// ldlp::rpc fan-out: the tail-at-scale RPC workload over the fleet fabric.
//
// The source paper optimizes the *mean* per-message cost; "Deconstructing
// the Tail at Scale Effect" shows that once a request fans out to N
// servers and completes only when the slowest reply lands, the p99/p999 of
// that slowest-of-N — not the mean — is what the user sees. This layer
// builds exactly that workload out of pieces the repo already has:
//
//   * FanoutServer — an ONC-RPC echo service on one stack::Host. UDP
//     datagrams carry one CALL each; the TCP variant speaks RFC 1831
//     record framing (4-byte length prefix) over persistent connections.
//   * FanoutClient — fans each request to all N servers at once and
//     completes it when the last reply arrives (response time = max of
//     N). Over UDP the client owns reliability: per-(request, server)
//     retransmit timers with capped exponential backoff, which is where
//     the long tail comes from — one lost reply out of 64 costs a full
//     RTO. Over TCP the transport retransmits and the tail comes from
//     head-of-line blocking instead.
//   * run_tail_workload — one simulated cell: a star fabric (client +
//     N servers), open-loop arrivals (self-similar or Poisson), optional
//     topology-scoped fault plan, full latency distribution recorded in
//     an obs::Histogram (p50/p99/p999/p9999).
//   * run_tail_sweep — the figure: fan-out degree x scheduling mode cells
//     run on a par::WorkerPool (cells are independent simulations, so the
//     emitted ldlp.bench.v1 result is bit-identical for any --jobs) —
//     where LDLP layer-blocked batching helps or hurts the tail vs the
//     mean against per-message processing.
//
// Everything is deterministic in the config seed: arrivals, fabric event
// order, retransmit timing and therefore every quantile.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/stack_graph.hpp"
#include "fault/fault_plan.hpp"
#include "obs/bench_result.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc_msg.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::rpc {

/// Program / procedure identity of the tail echo service.
inline constexpr std::uint32_t kTailProg = 0x5441494c;  // "TAIL"
inline constexpr std::uint32_t kTailVers = 1;
inline constexpr std::uint32_t kTailProcEcho = 1;

enum class FanoutTransport : std::uint8_t { kUdp, kTcp };

[[nodiscard]] const char* transport_name(FanoutTransport t) noexcept;

/// Per-message receive-path CPU cost, the paper's model reduced to two
/// numbers: a backlog of k messages costs fill_sec + k * marginal_sec of
/// host CPU. Under LDLP the cache-fill cost is paid once per batch
/// (fill > 0, small marginal); under conventional processing every
/// message pays the full cost (fill ~ 0, marginal ~ solo cost), so the
/// same formula models both. Calibrated, not invented: two short
/// synth::SynthStack runs (solo-paced and saturated) on the paper's
/// simulated machine yield the two numbers per scheduling mode.
struct ServiceCost {
  double fill_sec = 0.0;      ///< Batch-fixed cost (cache fill).
  double marginal_sec = 0.0;  ///< Per-message cost within a batch.
  [[nodiscard]] bool enabled() const noexcept { return marginal_sec > 0.0; }
};

/// Measure ServiceCost for `mode` on the synth machine with
/// `message_bytes` messages. Deterministic; results are cached per
/// (mode, size), and safe to call from worker threads.
[[nodiscard]] ServiceCost calibrate_service_cost(core::SchedMode mode,
                                                 std::size_t message_bytes);

struct FanoutConfig {
  FanoutTransport transport = FanoutTransport::kUdp;
  std::uint16_t port = 5300;         ///< Server RPC port (UDP bind / listen).
  std::uint16_t client_port = 5999;  ///< Client UDP source port.
  std::size_t request_bytes = 64;    ///< XDR opaque payload in each CALL.
  std::size_t reply_bytes = 64;      ///< XDR opaque payload in each REPLY.
  double rto_initial_sec = 0.25;     ///< First UDP retransmit timeout.
  double rto_max_sec = 4.0;          ///< Backoff cap (doubling).
  /// Receive-path CPU cost applied on both ends (server: request
  /// processing delays the reply; client: reply processing delays
  /// completion). Disabled (zero) means the fabric's wire time is the
  /// only latency — run_tail_workload calibrates it from the scheduling
  /// mode unless the caller already set it.
  ServiceCost service{};
};

struct FanoutServerStats {
  std::uint64_t calls = 0;      ///< Well-formed CALLs answered.
  std::uint64_t malformed = 0;  ///< Datagrams/records that failed to parse.
};

/// Single-server CPU: backlogs queue FIFO, a batch of k picked up at time
/// t finishes at max(t, busy) + fill + k * marginal, with the i-th
/// message done marginal seconds after the (i-1)-th.
class ServiceQueue {
 public:
  explicit ServiceQueue(ServiceCost cost) noexcept : cost_(cost) {}

  /// Begin a batch at `now`: returns the time the first message's
  /// processing completes; advance() steps to each subsequent one.
  [[nodiscard]] double begin_batch(double now) noexcept {
    cursor_ = std::max(now, busy_until_) + cost_.fill_sec;
    return advance();
  }
  [[nodiscard]] double advance() noexcept {
    cursor_ += cost_.marginal_sec;
    busy_until_ = cursor_;
    return cursor_;
  }

 private:
  ServiceCost cost_;
  double busy_until_ = 0.0;
  double cursor_ = 0.0;
};

/// One echo server instance on a host. poll() drains whatever the stack
/// delivered since the last poll and answers in arrival order (replies
/// release when their request's CPU service completes); drive it once per
/// fabric tick round.
class FanoutServer {
 public:
  FanoutServer(stack::Host& host, const FanoutConfig& config);

  void poll(double now_sec);

  [[nodiscard]] const FanoutServerStats& stats() const noexcept {
    return stats_;
  }
  /// The UDP socket (kNoSocket for TCP) — oracle binding point.
  [[nodiscard]] stack::SocketId udp_socket() const noexcept { return sock_; }

 private:
  struct TcpConn {
    stack::PcbId pcb = stack::kNoPcb;
    stack::SocketId socket = stack::kNoSocket;
    std::vector<std::uint8_t> rx;       ///< Partial record buffer.
    std::vector<std::uint8_t> tx;       ///< Replies the send buffer refused.
  };
  /// A reply whose request is still being "processed" by the server CPU;
  /// it goes on the wire at the first poll at/after `due`.
  struct DueReply {
    double due = 0.0;
    std::vector<std::uint8_t> bytes;
    std::uint32_t dst_ip = 0;        ///< UDP.
    std::uint16_t dst_port = 0;      ///< UDP.
    std::size_t conn = 0;            ///< TCP: index into conns_.
  };

  void poll_udp(double now_sec);
  void poll_tcp(double now_sec);
  void flush_due(double now_sec);
  void answer(const RpcCall& call, std::vector<std::uint8_t>* out);

  stack::Host& host_;
  FanoutConfig cfg_;
  ServiceQueue service_;
  stack::SocketId sock_ = stack::kNoSocket;  ///< UDP only.
  stack::PcbId listener_ = stack::kNoPcb;    ///< TCP only.
  std::vector<TcpConn> conns_;               ///< TCP only.
  std::deque<DueReply> due_;                 ///< FIFO by due time.
  FanoutServerStats stats_;
};

struct FanoutClientStats {
  std::uint64_t requests_started = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t calls_sent = 0;      ///< Including retransmits.
  std::uint64_t retransmits = 0;     ///< UDP only.
  std::uint64_t replies = 0;         ///< Well-formed replies accepted.
  std::uint64_t stale_replies = 0;   ///< Replies for already-done legs.
  std::uint64_t malformed = 0;
};

/// The fan-out client: one host, N server addresses, many outstanding
/// requests (open loop). Each completed request records
/// (completion - arrival) into the latency histogram — arrival is the
/// scheduled offered time, so queueing behind a busy client counts, as it
/// does for a real user.
class FanoutClient {
 public:
  /// `latency` must outlive the client; `server_ips[i]` is leg i.
  FanoutClient(stack::Host& host, std::vector<std::uint32_t> server_ips,
               const FanoutConfig& config, obs::Histogram& latency);
  ~FanoutClient();

  /// TCP transport: open one connection per server. Call once before the
  /// first start(); poll the fabric until connected() before offering
  /// load (UDP needs no warm-up and connected() is immediately true).
  void connect_all();
  [[nodiscard]] bool connected() const;

  /// Offer one request: fan a CALL to every server leg now. `arrival_sec`
  /// is the scheduled (offered-load) time, `now_sec` the fabric clock.
  void start(double arrival_sec, double now_sec);

  /// Drain replies, complete requests whose last leg landed, retransmit
  /// UDP legs whose RTO expired. Drive once per fabric tick round. The
  /// UDP client keeps one wakeup timer on the host's wheel armed at the
  /// earliest leg RTO, so an idle poll (no replies pending, nothing due)
  /// returns without scanning the outstanding-request table.
  void poll(double now_sec);

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_;
  }
  [[nodiscard]] const FanoutClientStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  /// The UDP socket (kNoSocket for TCP) — oracle binding point.
  [[nodiscard]] stack::SocketId udp_socket() const noexcept { return sock_; }
  /// Hook observing every CALL payload handed to a leg (ground truth for
  /// delivery oracles; fires for first transmissions and retransmits).
  void set_call_hook(
      std::function<void(std::size_t leg, std::span<const std::uint8_t>)>
          hook) {
    call_hook_ = std::move(hook);
  }

 private:
  struct Leg {  ///< One (request, server) pair in flight.
    bool done = false;
    double last_tx = 0.0;
    double rto = 0.0;
  };
  struct Request {
    std::uint32_t xid = 0;
    double arrival = 0.0;
    std::vector<Leg> legs;
    std::size_t remaining = 0;
  };
  struct TcpLeg {
    stack::PcbId conn = stack::kNoPcb;
    stack::SocketId socket = stack::kNoSocket;
    std::vector<std::uint8_t> rx;
    std::vector<std::uint8_t> tx;
  };

  [[nodiscard]] std::vector<std::uint8_t> encode_call_for(std::uint32_t xid);
  void send_leg(Request& request, std::size_t leg, double now_sec);
  void on_reply(std::size_t leg, const RpcReply& reply, double now_sec);
  void complete(Request& request, double now_sec);
  /// Point the wakeup timer at `due` (+inf cancels). The fire itself is a
  /// no-op — the workload loop polls — but the armed deadline gates the
  /// poll early-exit and is what the timer oracles observe.
  void arm_wake(double due);

  stack::Host& host_;
  std::vector<std::uint32_t> servers_;
  FanoutConfig cfg_;
  ServiceQueue service_;
  obs::Histogram& latency_;
  stack::SocketId sock_ = stack::kNoSocket;  ///< UDP only.
  time::TimerId wake_ = time::kNoTimer;      ///< UDP only.
  double next_due_ = 0.0;  ///< Cached earliest leg RTO (+inf if none).
  std::vector<TcpLeg> tcp_legs_;             ///< TCP only, one per server.
  std::vector<Request> requests_;            ///< Indexed by xid.
  std::size_t outstanding_ = 0;
  FanoutClientStats stats_;
  std::function<void(std::size_t, std::span<const std::uint8_t>)> call_hook_;
};

// ---------------------------------------------------------------------------
// One benchmark cell and the full sweep.

struct TailRunConfig {
  std::size_t fanout = 4;        ///< N servers per request.
  std::size_t requests = 200;    ///< Offered requests (open loop).
  double rate_per_sec = 100.0;   ///< Mean offered request rate.
  bool self_similar = true;      ///< Self-similar arrivals (else Poisson).
  std::uint64_t seed = 1;        ///< Drives arrivals and fabric RNG.
  core::SchedMode mode = core::SchedMode::kLdlp;
  std::size_t batch_limit = 0;   ///< LDLP entry-layer yield bound; 0 = all.
  /// Charge calibrated per-message CPU cost on both ends (see
  /// ServiceCost). Off = wire-time-only latency, which is scheduling-mode
  /// invariant in the fabric.
  bool cpu_model = true;
  FanoutConfig fanout_cfg{};
  double host_tick_sec = 1e-3;   ///< Fabric tick round period.
  fault::FaultPlan fabric_plan;  ///< Optional topology-scoped adversity.
  std::uint64_t fabric_fault_seed = 1;
  double drain_budget_sec = 120.0;  ///< Sim-time cap after the last arrival.
};

struct TailRunResult {
  bool ok = false;               ///< Every request completed.
  std::uint64_t completed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t calls_sent = 0;
  double mean_sec = 0.0;
  double p50_sec = 0.0;
  double p99_sec = 0.0;
  double p999_sec = 0.0;
  double p9999_sec = 0.0;
  double max_sec = 0.0;
  double sim_sec = 0.0;          ///< Fabric time at quiescence.
};

/// Run one cell: star fabric with `fanout` servers + 1 client, offered
/// arrivals, drive to quiescence, summarize the latency histogram.
/// Deterministic in the config.
[[nodiscard]] TailRunResult run_tail_workload(const TailRunConfig& config);

struct TailSweepConfig {
  std::vector<std::size_t> fanouts = {1, 4, 16, 64};
  std::vector<core::SchedMode> modes = {core::SchedMode::kConventional,
                                        core::SchedMode::kLdlp};
  TailRunConfig base{};  ///< fanout/mode overwritten per cell.
};

/// The fan-out figure as an ldlp.bench.v1 result: one metric family per
/// (mode, N) cell — mean/p50/p99/p999/p9999, completion and retransmit
/// counts. Cells run on `jobs` worker threads; results land in
/// cell-indexed slots and are emitted in cell order after the barrier, so
/// the result (and its JSON serialization) is bit-identical for any jobs
/// value.
[[nodiscard]] obs::BenchResult run_tail_sweep(const TailSweepConfig& config,
                                              std::size_t jobs);

}  // namespace ldlp::rpc
