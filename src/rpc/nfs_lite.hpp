// NFS-lite: a miniature NFSv2-flavoured file service over ONC RPC / UDP.
//
// The paper's intro counts "all except two messages in NFS" among the
// small messages (READ replies and WRITE calls being the fat exceptions).
// This service reproduces that mix: GETATTR / LOOKUP / CREATE / READDIR
// are all well under 200 bytes on the wire, while READ/WRITE carry data.
//
// Semantics follow classic NFSv2: stateless server, idempotent
// procedures, at-least-once UDP with client retry, plus the standard
// duplicate-request cache so retried non-idempotent-looking operations
// (CREATE) don't double-apply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/rpc_msg.hpp"
#include "stack/host.hpp"

namespace ldlp::rpc {

inline constexpr std::uint32_t kNfsProgram = 100003;
inline constexpr std::uint32_t kNfsVersion = 2;
inline constexpr std::uint16_t kNfsPort = 2049;

enum class NfsProc : std::uint32_t {
  kNull = 0,
  kGetattr = 1,
  kLookup = 4,
  kRead = 6,
  kWrite = 8,
  kCreate = 9,
  kReaddir = 16,
};

enum class NfsStat : std::uint32_t {
  kOk = 0,
  kNoEnt = 2,
  kIo = 5,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kFBig = 27,
  kStale = 70,
};

using FileHandle = std::uint64_t;
inline constexpr FileHandle kRootHandle = 1;

struct FileAttr {
  bool is_dir = false;
  std::uint32_t size = 0;
  std::uint32_t mode = 0644;
  std::uint64_t mtime_ticks = 0;
};

/// In-memory filesystem backing the server: a root directory of flat
/// files plus subdirectories one level deep (enough for realistic
/// metadata workloads without a full hierarchy walk).
class MemFs {
 public:
  MemFs();

  [[nodiscard]] std::optional<FileAttr> getattr(FileHandle fh) const;
  [[nodiscard]] std::optional<FileHandle> lookup(FileHandle dir,
                                                 const std::string& name) const;
  /// Returns kExist if present (and hands back the existing handle, NFS
  /// semantics), kNotDir if dir isn't a directory.
  NfsStat create(FileHandle dir, const std::string& name, bool is_dir,
                 FileHandle& out);
  NfsStat read(FileHandle fh, std::uint32_t offset, std::uint32_t count,
               std::vector<std::uint8_t>& out) const;
  NfsStat write(FileHandle fh, std::uint32_t offset,
                std::span<const std::uint8_t> data);
  [[nodiscard]] std::vector<std::string> readdir(FileHandle dir) const;

  [[nodiscard]] std::size_t file_count() const noexcept {
    return nodes_.size();
  }

 private:
  struct Node {
    FileAttr attr;
    std::vector<std::uint8_t> data;           ///< Files.
    std::map<std::string, FileHandle> names;  ///< Directories.
  };

  [[nodiscard]] const Node* node(FileHandle fh) const;
  [[nodiscard]] Node* node(FileHandle fh);

  std::unordered_map<FileHandle, Node> nodes_;
  FileHandle next_handle_ = kRootHandle + 1;
};

struct NfsServerStats {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  std::uint64_t dup_cache_hits = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class NfsServer {
 public:
  explicit NfsServer(stack::Host& host, std::uint16_t port = kNfsPort);

  [[nodiscard]] MemFs& fs() noexcept { return fs_; }

  /// Drain and answer pending calls. Call after host.pump().
  std::size_t poll();

  [[nodiscard]] const NfsServerStats& stats() const noexcept { return stats_; }

 private:
  std::vector<std::uint8_t> dispatch(const RpcCall& call, AcceptStat& stat);

  stack::Host& host_;
  std::uint16_t port_;
  stack::SocketId socket_ = stack::kNoSocket;
  MemFs fs_;
  /// Duplicate-request cache: xid -> encoded reply (bounded FIFO).
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> dup_cache_;
  std::vector<std::uint32_t> dup_order_;
  NfsServerStats stats_;
};

struct NfsClientStats {
  std::uint64_t calls = 0;
  std::uint64_t replies = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
};

/// Synchronous-style client: issue a call, pump the network via the
/// supplied hook until the reply lands or retries run out.
class NfsClient {
 public:
  struct Config {
    std::uint32_t server_ip = 0;
    std::uint16_t server_port = kNfsPort;
    std::uint16_t local_port = 30049;
    std::uint32_t max_retries = 3;
    double retry_sec = 0.5;      ///< First retry timeout; doubles per attempt.
    double retry_max_sec = 2.0;  ///< Backoff ceiling.
  };

  /// `pump` must advance the network (both hosts + server poll) once.
  using PumpFn = std::function<void()>;

  NfsClient(stack::Host& host, Config config, PumpFn pump);

  [[nodiscard]] std::optional<FileAttr> getattr(FileHandle fh);
  [[nodiscard]] std::optional<FileHandle> lookup(FileHandle dir,
                                                 const std::string& name);
  [[nodiscard]] std::optional<FileHandle> create(FileHandle dir,
                                                 const std::string& name);
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read(
      FileHandle fh, std::uint32_t offset, std::uint32_t count);
  [[nodiscard]] bool write(FileHandle fh, std::uint32_t offset,
                           std::span<const std::uint8_t> data);
  [[nodiscard]] std::optional<std::vector<std::string>> readdir(FileHandle fh);

  [[nodiscard]] const NfsClientStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> call(
      NfsProc proc, std::span<const std::uint8_t> args);

  stack::Host& host_;
  Config cfg_;
  PumpFn pump_;
  stack::SocketId socket_ = stack::kNoSocket;
  std::uint32_t next_xid_ = 0x10000001;
  NfsClientStats stats_;
};

}  // namespace ldlp::rpc
