#include "rpc/fanout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

#include "common/assert.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "par/worker_pool.hpp"
#include "rpc/xdr.hpp"
#include "synth/synth_stack.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/size_models.hpp"

namespace ldlp::rpc {
namespace {

/// Cap on one RFC 1831 TCP record: anything larger is a framing error
/// (the parser condemns the whole connection buffer rather than waiting
/// forever for bytes that will never come).
constexpr std::uint32_t kMaxRecord = 1 << 20;

/// Deterministic fill so every (xid, size) payload is byte-reproducible
/// across retransmits — the delivery oracles count payload instances and
/// a retransmit must be a byte-exact re-instance.
std::vector<std::uint8_t> payload_fill(std::uint32_t xid, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i)
    bytes[i] = static_cast<std::uint8_t>(xid * 31 + i * 7 + 1);
  return bytes;
}

void put_record_len(std::vector<std::uint8_t>& out, std::uint32_t len) {
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
}

/// Prefix an RPC message with its 4-byte record mark (RFC 1831 section 10,
/// sans the last-fragment bit — every record here is one fragment).
std::vector<std::uint8_t> frame_record(std::span<const std::uint8_t> msg) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + msg.size());
  put_record_len(out, static_cast<std::uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

/// Consume complete records from the front of `buf`, invoking `sink` on
/// each; partial trailing bytes stay buffered. Returns false on a framing
/// violation (oversized record) — the caller counts it and drops the
/// buffer.
bool drain_records(
    std::vector<std::uint8_t>& buf,
    const std::function<void(std::span<const std::uint8_t>)>& sink) {
  std::size_t off = 0;
  bool ok = true;
  while (buf.size() - off >= 4) {
    const std::uint32_t len = (std::uint32_t{buf[off]} << 24) |
                              (std::uint32_t{buf[off + 1]} << 16) |
                              (std::uint32_t{buf[off + 2]} << 8) |
                              std::uint32_t{buf[off + 3]};
    if (len > kMaxRecord) {
      buf.clear();
      return false;
    }
    if (buf.size() - off - 4 < len) break;
    sink(std::span(buf.data() + off + 4, len));
    off += 4 + len;
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  return ok;
}

/// Pull whatever the stream socket has buffered into `rx`.
void slurp_stream(stack::Host& host, stack::SocketId socket,
                  std::vector<std::uint8_t>& rx) {
  std::uint8_t chunk[2048];
  for (;;) {
    const std::size_t n = host.sockets().read(socket, chunk);
    if (n == 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
  }
}

/// Queue-or-send on a TCP pcb: anything the send buffer refuses rides in
/// `tx` until the next poll.
void tcp_push(stack::Host& host, stack::PcbId pcb,
              std::vector<std::uint8_t>& tx,
              std::span<const std::uint8_t> bytes) {
  if (tx.empty() && host.tcp().send(pcb, bytes)) return;
  tx.insert(tx.end(), bytes.begin(), bytes.end());
}

void tcp_flush(stack::Host& host, stack::PcbId pcb,
               std::vector<std::uint8_t>& tx) {
  if (tx.empty()) return;
  if (host.tcp().send(pcb, tx)) tx.clear();
}

}  // namespace

const char* transport_name(FanoutTransport t) noexcept {
  return t == FanoutTransport::kUdp ? "udp" : "tcp";
}

ServiceCost calibrate_service_cost(core::SchedMode mode,
                                   std::size_t message_bytes) {
  static std::mutex mu;
  static std::map<std::pair<int, std::size_t>, ServiceCost> cache;
  const std::pair<int, std::size_t> key{static_cast<int>(mode),
                                        message_bytes};
  {
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }

  synth::SynthConfig scfg;
  scfg.mode = synth::from_sched(mode);
  scfg.typical_message_bytes = static_cast<std::uint32_t>(message_bytes);
  const auto busy_per_msg = [&scfg, message_bytes](double rate,
                                                   double horizon) {
    synth::SynthStack stack(scfg);
    traffic::DeterministicSource source(
        rate, static_cast<std::uint32_t>(message_bytes));
    const synth::RunResult r = stack.run(source, horizon);
    if (r.completed == 0) return 0.0;
    return stack.cpu().seconds(stack.cpu().busy_cycles()) /
           static_cast<double>(r.completed);
  };
  // Solo pacing: 1 ms gaps dwarf the per-message cost, so every message
  // arrives to an idle machine and pays the full cache fill (batch = 1).
  const double solo = busy_per_msg(1000.0, 1.0);
  // Saturation: the queue never empties, batches max out, and the busy
  // time per message converges to the marginal (amortized) cost. Under
  // conventional processing batches don't exist, so this equals solo and
  // the fill term below collapses to ~0 — one formula covers both modes.
  const double amortized = busy_per_msg(100000.0, 0.05);

  ServiceCost cost;
  cost.marginal_sec = std::min(solo, amortized);
  cost.fill_sec = std::max(0.0, solo - cost.marginal_sec);
  {
    const std::lock_guard<std::mutex> lock(mu);
    cache.emplace(key, cost);
  }
  return cost;
}

// ------------------------------------------------------------------ server

FanoutServer::FanoutServer(stack::Host& host, const FanoutConfig& config)
    : host_(host), cfg_(config), service_(config.service) {
  if (cfg_.transport == FanoutTransport::kUdp) {
    sock_ = host_.sockets().create(stack::SocketKind::kDatagram, 64 * 1024);
    const bool bound = host_.udp().bind(cfg_.port, sock_);
    LDLP_ASSERT_MSG(bound, "fanout server port already bound");
    return;
  }
  host_.tcp().set_accept_hook([this](stack::PcbId id) {
    TcpConn conn;
    conn.pcb = id;
    conn.socket = host_.tcp().socket_of(id);
    conns_.push_back(std::move(conn));
  });
  listener_ = host_.tcp().listen(cfg_.port);
}

void FanoutServer::answer(const RpcCall& call,
                          std::vector<std::uint8_t>* out) {
  RpcReply reply;
  reply.xid = call.xid;
  reply.stat = AcceptStat::kSuccess;
  if (call.prog != kTailProg || call.proc != kTailProcEcho) {
    reply.stat = call.prog != kTailProg ? AcceptStat::kProgUnavail
                                        : AcceptStat::kProcUnavail;
  } else {
    XdrWriter w;
    w.opaque(payload_fill(call.xid ^ 0x5a5a5a5a, cfg_.reply_bytes));
    reply.results = w.take();
  }
  ++stats_.calls;
  *out = encode_reply(reply);
}

void FanoutServer::flush_due(double now_sec) {
  while (!due_.empty() && due_.front().due <= now_sec) {
    DueReply& r = due_.front();
    if (cfg_.transport == FanoutTransport::kUdp) {
      host_.udp().send(cfg_.port, r.dst_ip, r.dst_port, r.bytes);
    } else {
      TcpConn& conn = conns_[r.conn];
      const auto framed = frame_record(r.bytes);
      tcp_push(host_, conn.pcb, conn.tx, framed);
    }
    due_.pop_front();
  }
}

void FanoutServer::poll_udp(double now_sec) {
  // Drain this tick's backlog as one batch: under LDLP its cache-fill
  // cost is shared, under conventional processing each request pays it.
  bool first = true;
  for (;;) {
    const auto dgram = host_.sockets().read_datagram(sock_);
    if (!dgram.has_value()) break;
    const auto decoded = decode_rpc(dgram->payload);
    if (!decoded.has_value() || !decoded->call.has_value()) {
      ++stats_.malformed;
      continue;
    }
    DueReply r;
    r.due = first ? service_.begin_batch(now_sec) : service_.advance();
    first = false;
    answer(*decoded->call, &r.bytes);
    r.dst_ip = dgram->from_ip;
    r.dst_port = dgram->from_port;
    due_.push_back(std::move(r));
  }
}

void FanoutServer::poll_tcp(double now_sec) {
  bool first = true;
  for (std::size_t c = 0; c < conns_.size(); ++c) {
    TcpConn& conn = conns_[c];
    tcp_flush(host_, conn.pcb, conn.tx);
    slurp_stream(host_, conn.socket, conn.rx);
    const bool ok = drain_records(
        conn.rx,
        [this, c, now_sec, &first](std::span<const std::uint8_t> record) {
          const auto decoded = decode_rpc(record);
          if (!decoded.has_value() || !decoded->call.has_value()) {
            ++stats_.malformed;
            return;
          }
          DueReply r;
          r.due = first ? service_.begin_batch(now_sec) : service_.advance();
          first = false;
          answer(*decoded->call, &r.bytes);
          r.conn = c;
          due_.push_back(std::move(r));
        });
    if (!ok) ++stats_.malformed;
  }
}

void FanoutServer::poll(double now_sec) {
  flush_due(now_sec);
  if (cfg_.transport == FanoutTransport::kUdp)
    poll_udp(now_sec);
  else
    poll_tcp(now_sec);
  // A zero-cost service queue (cpu model off) completes batches at
  // now_sec, so answer within the same poll rather than a tick later.
  flush_due(now_sec);
}

// ------------------------------------------------------------------ client

FanoutClient::FanoutClient(stack::Host& host,
                           std::vector<std::uint32_t> server_ips,
                           const FanoutConfig& config,
                           obs::Histogram& latency)
    : host_(host),
      servers_(std::move(server_ips)),
      cfg_(config),
      service_(config.service),
      latency_(latency) {
  LDLP_ASSERT(!servers_.empty());
  if (cfg_.transport == FanoutTransport::kUdp) {
    sock_ = host_.sockets().create(stack::SocketKind::kDatagram, 256 * 1024);
    const bool bound = host_.udp().bind(cfg_.client_port, sock_);
    LDLP_ASSERT_MSG(bound, "fanout client port already bound");
  } else {
    tcp_legs_.resize(servers_.size());
  }
  next_due_ = std::numeric_limits<double>::infinity();
}

FanoutClient::~FanoutClient() {
  if (wake_ != time::kNoTimer) host_.wheel().cancel(wake_);
}

void FanoutClient::arm_wake(double due) {
  next_due_ = due;
  time::TimerWheel& wheel = host_.wheel();
  if (!std::isfinite(due)) {
    if (wake_ != time::kNoTimer) {
      wheel.cancel(wake_);
      wake_ = time::kNoTimer;
    }
    return;
  }
  if (wake_ != time::kNoTimer && wheel.deadline_of(wake_) == due) return;
  if (wake_ != time::kNoTimer) wheel.cancel(wake_);
  wake_ = wheel.arm(due, time::TimerClass::kLiveness, [] {});
}

void FanoutClient::connect_all() {
  if (cfg_.transport == FanoutTransport::kUdp) return;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    tcp_legs_[i].conn = host_.tcp().connect(servers_[i], cfg_.port);
    tcp_legs_[i].socket = host_.tcp().socket_of(tcp_legs_[i].conn);
  }
}

bool FanoutClient::connected() const {
  if (cfg_.transport == FanoutTransport::kUdp) return true;
  for (const TcpLeg& leg : tcp_legs_) {
    if (leg.conn == stack::kNoPcb ||
        host_.tcp().state(leg.conn) != stack::TcpState::kEstablished)
      return false;
  }
  return true;
}

std::vector<std::uint8_t> FanoutClient::encode_call_for(std::uint32_t xid) {
  RpcCall call;
  call.xid = xid;
  call.prog = kTailProg;
  call.vers = kTailVers;
  call.proc = kTailProcEcho;
  XdrWriter w;
  w.opaque(payload_fill(xid, cfg_.request_bytes));
  call.args = w.take();
  return encode_call(call);
}

void FanoutClient::send_leg(Request& request, std::size_t leg,
                            double now_sec) {
  const std::vector<std::uint8_t> bytes = encode_call_for(request.xid);
  if (call_hook_) call_hook_(leg, bytes);
  if (cfg_.transport == FanoutTransport::kUdp) {
    host_.udp().send(cfg_.client_port, servers_[leg], cfg_.port, bytes);
  } else {
    const auto framed = frame_record(bytes);
    tcp_push(host_, tcp_legs_[leg].conn, tcp_legs_[leg].tx, framed);
  }
  request.legs[leg].last_tx = now_sec;
  ++stats_.calls_sent;
}

void FanoutClient::start(double arrival_sec, double now_sec) {
  Request request;
  request.xid = static_cast<std::uint32_t>(requests_.size());
  request.arrival = arrival_sec;
  request.legs.assign(servers_.size(), Leg{});
  request.remaining = servers_.size();
  for (Leg& leg : request.legs) leg.rto = cfg_.rto_initial_sec;
  requests_.push_back(std::move(request));
  ++outstanding_;
  ++stats_.requests_started;
  Request& stored = requests_.back();
  for (std::size_t i = 0; i < servers_.size(); ++i)
    send_leg(stored, i, now_sec);
  if (cfg_.transport == FanoutTransport::kUdp)
    arm_wake(std::min(next_due_, now_sec + cfg_.rto_initial_sec));
}

void FanoutClient::complete(Request& request, double now_sec) {
  --outstanding_;
  ++stats_.requests_completed;
  // arrival < 0 marks a warm-up request (ARP resolution, cold caches)
  // whose latency is not part of the offered-load distribution.
  if (request.arrival >= 0.0)
    latency_.add(std::max(0.0, now_sec - request.arrival));
}

void FanoutClient::on_reply(std::size_t leg, const RpcReply& reply,
                            double now_sec) {
  if (reply.xid >= requests_.size()) {
    ++stats_.malformed;
    return;
  }
  Request& request = requests_[reply.xid];
  if (leg >= request.legs.size() || request.legs[leg].done) {
    ++stats_.stale_replies;
    return;
  }
  ++stats_.replies;
  request.legs[leg].done = true;
  if (--request.remaining == 0) complete(request, now_sec);
}

void FanoutClient::poll(double now_sec) {
  if (cfg_.transport == FanoutTransport::kUdp) {
    // Nothing arrived and no leg RTO is due: skip the drain and the
    // outstanding-request scan (the wakeup timer bounds the wait).
    if (now_sec < next_due_ &&
        host_.sockets().pending_datagrams(sock_) == 0)
      return;
    // Drain replies; the sender's address picks the leg. This tick's
    // replies are one receive batch on the client CPU — with a 64-wide
    // fan-out the reply incast is exactly the small-message backlog the
    // paper's batching amortizes, so each reply completes at its
    // service time, not at wire arrival.
    bool first = true;
    for (;;) {
      const auto dgram = host_.sockets().read_datagram(sock_);
      if (!dgram.has_value()) break;
      const auto decoded = decode_rpc(dgram->payload);
      if (!decoded.has_value() || !decoded->reply.has_value()) {
        ++stats_.malformed;
        continue;
      }
      const auto it =
          std::find(servers_.begin(), servers_.end(), dgram->from_ip);
      if (it == servers_.end()) {
        ++stats_.malformed;
        continue;
      }
      const double done =
          first ? service_.begin_batch(now_sec) : service_.advance();
      first = false;
      on_reply(static_cast<std::size_t>(it - servers_.begin()),
               *decoded->reply, done);
    }
    // Retransmit legs whose RTO expired, with capped doubling. This is
    // the client-owned reliability of RPC-over-UDP — and the mechanism
    // that turns one lost frame into a tail-latency spike. The same scan
    // re-derives the earliest pending RTO for the wakeup timer.
    double due = std::numeric_limits<double>::infinity();
    for (Request& request : requests_) {
      if (request.remaining == 0) continue;
      for (std::size_t i = 0; i < request.legs.size(); ++i) {
        Leg& leg = request.legs[i];
        if (leg.done) continue;
        if (now_sec - leg.last_tx >= leg.rto) {
          leg.rto = std::min(leg.rto * 2.0, cfg_.rto_max_sec);
          send_leg(request, i, now_sec);
          ++stats_.retransmits;
        }
        due = std::min(due, leg.last_tx + leg.rto);
      }
    }
    arm_wake(due);
    return;
  }
  bool first = true;
  for (std::size_t i = 0; i < tcp_legs_.size(); ++i) {
    TcpLeg& leg = tcp_legs_[i];
    tcp_flush(host_, leg.conn, leg.tx);
    slurp_stream(host_, leg.socket, leg.rx);
    const bool ok = drain_records(
        leg.rx,
        [this, i, now_sec, &first](std::span<const std::uint8_t> record) {
          const auto decoded = decode_rpc(record);
          if (!decoded.has_value() || !decoded->reply.has_value()) {
            ++stats_.malformed;
            return;
          }
          const double done =
              first ? service_.begin_batch(now_sec) : service_.advance();
          first = false;
          on_reply(i, *decoded->reply, done);
        });
    if (!ok) ++stats_.malformed;
  }
}

// ------------------------------------------------------------------- cells

namespace {

/// Offered arrival times for one cell: the first `requests` arrivals of a
/// self-similar (or Poisson) stream at the configured mean rate.
std::vector<double> make_arrivals(const TailRunConfig& cfg) {
  std::vector<double> times;
  times.reserve(cfg.requests);
  traffic::FixedSize sizes(
      static_cast<std::uint32_t>(cfg.fanout_cfg.request_bytes));
  if (cfg.self_similar) {
    traffic::SelfSimilarConfig scfg;
    scfg.mean_rate_per_sec = cfg.rate_per_sec;
    scfg.num_sources = 32;
    // Self-similar streams are bursty: a duration sized to the mean rate
    // can come up short of `requests` arrivals, so grow it until enough
    // arrive (deterministic — same seed, longer horizon).
    scfg.duration_sec =
        2.0 * static_cast<double>(cfg.requests) / cfg.rate_per_sec + 5.0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto trace =
          traffic::generate_self_similar_trace(scfg, sizes, cfg.seed);
      if (trace.size() >= cfg.requests) {
        for (std::size_t i = 0; i < cfg.requests; ++i)
          times.push_back(trace[i].time);
        return times;
      }
      scfg.duration_sec *= 2.0;
    }
  }
  traffic::PoissonSource source(cfg.rate_per_sec,
                                std::make_unique<traffic::FixedSize>(
                                    static_cast<std::uint32_t>(
                                        cfg.fanout_cfg.request_bytes)),
                                cfg.seed);
  while (times.size() < cfg.requests) times.push_back(source.next()->time);
  return times;
}

}  // namespace

TailRunResult run_tail_workload(const TailRunConfig& config) {
  TailRunResult result;
  net::Fabric fabric({/*host_tick_sec=*/config.host_tick_sec,
                      /*fault_seed=*/config.fabric_fault_seed});
  net::StarConfig star;
  star.hosts = config.fanout + 1;  // h0 is the client.
  // Room for a full fan-out burst (N frames enqueue in one tick round)
  // plus ARP chatter: the access queue must not drop every burst, only
  // genuinely overloaded ones.
  star.access.queue_frames = 256;
  star.proto.mode = config.mode;
  star.proto.batch_limit = config.batch_limit;
  const std::vector<net::HostId> hosts = net::build_star(fabric, star);
  if (!config.fabric_plan.empty())
    fabric.set_fault_plan(config.fabric_plan, config.fabric_fault_seed);

  FanoutConfig fanout_cfg = config.fanout_cfg;
  if (config.cpu_model && !fanout_cfg.service.enabled())
    fanout_cfg.service =
        calibrate_service_cost(config.mode, fanout_cfg.request_bytes);

  std::vector<std::uint32_t> server_ips;
  std::vector<std::unique_ptr<FanoutServer>> servers;
  for (std::size_t i = 1; i <= config.fanout; ++i) {
    server_ips.push_back(net::host_ip(static_cast<std::uint32_t>(i)));
    servers.push_back(std::make_unique<FanoutServer>(fabric.host(hosts[i]),
                                                     fanout_cfg));
  }
  obs::Histogram latency(1e-4, 1e3, 32);
  FanoutClient client(fabric.host(hosts[0]), server_ips, fanout_cfg,
                      latency);

  const double tick = config.host_tick_sec;
  const auto step = [&] {
    client.poll(fabric.now());
    for (const auto& server : servers) server->poll(fabric.now());
    fabric.run_for(tick);
  };

  if (fanout_cfg.transport == FanoutTransport::kTcp) {
    client.connect_all();
    for (int i = 0; i < 20000 && !client.connected(); ++i) step();
    if (!client.connected()) return result;  // ok = false
  } else {
    // One unrecorded warm-up fan-out resolves every server's ARP entry,
    // so the measured distribution is steady-state RPC, not ARP cost.
    client.start(/*arrival_sec=*/-1.0, fabric.now());
    for (int i = 0; i < 20000 && client.outstanding() != 0; ++i) step();
  }

  const std::vector<double> arrivals = make_arrivals(config);
  const double t0 = fabric.now() + tick;
  std::size_t next = 0;
  const double deadline =
      t0 + (arrivals.empty() ? 0.0 : arrivals.back()) +
      config.drain_budget_sec;
  while (next < arrivals.size() || client.outstanding() != 0) {
    const double now = fabric.now();
    if (now > deadline) break;
    while (next < arrivals.size() && t0 + arrivals[next] <= now) {
      client.start(t0 + arrivals[next], now);
      ++next;
    }
    step();
  }

  result.ok = client.outstanding() == 0 && next == arrivals.size() &&
              client.stats().requests_completed >=
                  client.stats().requests_started;
  result.completed = latency.count();
  result.retransmits = client.stats().retransmits;
  result.calls_sent = client.stats().calls_sent;
  result.mean_sec = latency.mean();
  result.p50_sec = latency.p50();
  result.p99_sec = latency.p99();
  result.p999_sec = latency.p999();
  result.p9999_sec = latency.p9999();
  result.max_sec = latency.max();
  result.sim_sec = fabric.now();
  return result;
}

obs::BenchResult run_tail_sweep(const TailSweepConfig& config,
                                std::size_t jobs) {
  struct Cell {
    TailRunConfig cfg;
    std::string prefix;
    TailRunResult res;
  };
  std::vector<Cell> cells;
  for (const core::SchedMode mode : config.modes) {
    for (const std::size_t fanout : config.fanouts) {
      Cell cell;
      cell.cfg = config.base;
      cell.cfg.mode = mode;
      cell.cfg.fanout = fanout;
      cell.prefix =
          std::string(mode == core::SchedMode::kLdlp ? "ldlp" : "conv") +
          ".";
      cells.push_back(std::move(cell));
    }
  }
  par::WorkerPool pool(jobs);
  pool.run(cells.size(), [&cells](std::size_t job, par::WorkerContext&) {
    cells[job].res = run_tail_workload(cells[job].cfg);
  });

  obs::BenchResult result;
  result.name = "tail_fanout";
  result.tolerance = 0.05;
  result.set_config("transport",
                    transport_name(config.base.fanout_cfg.transport));
  result.set_config("requests", std::to_string(config.base.requests));
  result.set_config("rate_per_sec",
                    std::to_string(config.base.rate_per_sec));
  result.set_config("seed", std::to_string(config.base.seed));
  result.set_config("arrivals",
                    config.base.self_similar ? "self-similar" : "poisson");
  for (const Cell& cell : cells) {
    const std::string key =
        cell.prefix + "n" + std::to_string(cell.cfg.fanout);
    result.set_metric(key + ".completed",
                      static_cast<double>(cell.res.completed));
    result.set_metric(key + ".incomplete", cell.res.ok ? 0.0 : 1.0);
    result.set_metric(key + ".retransmits",
                      static_cast<double>(cell.res.retransmits));
    result.set_metric(key + ".mean_sec", cell.res.mean_sec);
    result.set_metric(key + ".p50_sec", cell.res.p50_sec);
    result.set_metric(key + ".p99_sec", cell.res.p99_sec);
    result.set_metric(key + ".p999_sec", cell.res.p999_sec);
    result.set_metric(key + ".p9999_sec", cell.res.p9999_sec);
  }
  return result;
}

}  // namespace ldlp::rpc
