// XDR (RFC 1832 subset): the external data representation under ONC RPC.
//
// Everything is big-endian and padded to 4-byte boundaries; opaque data
// and strings carry a length word. Bounds-checked on decode — RPC servers
// parse hostile bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ldlp::rpc {

class XdrWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u32(v ? 1 : 0); }
  /// Variable-length opaque: length word + bytes + pad to 4.
  void opaque(std::span<const std::uint8_t> data);
  void str(const std::string& s);
  /// Fixed-length opaque: bytes + pad, no length word.
  void opaque_fixed(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(out_);
  }

 private:
  void pad();
  std::vector<std::uint8_t> out_;
};

class XdrReader {
 public:
  explicit XdrReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::optional<std::uint32_t> u32();
  [[nodiscard]] std::optional<std::uint64_t> u64();
  [[nodiscard]] std::optional<bool> boolean();
  /// Variable-length opaque with a sanity cap on the length word.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> opaque(
      std::uint32_t max_len = 1 << 20);
  [[nodiscard]] std::optional<std::string> str(std::uint32_t max_len = 4096);
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> opaque_fixed(
      std::uint32_t len);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ldlp::rpc
