#include "rpc/xdr.hpp"

#include "common/byteorder.hpp"

namespace ldlp::rpc {

void XdrWriter::pad() {
  while (out_.size() % 4 != 0) out_.push_back(0);
}

void XdrWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  store_be32(b, v);
  out_.insert(out_.end(), b, b + 4);
}

void XdrWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void XdrWriter::opaque(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  out_.insert(out_.end(), data.begin(), data.end());
  pad();
}

void XdrWriter::str(const std::string& s) {
  opaque({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void XdrWriter::opaque_fixed(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
  pad();
}

std::optional<std::uint32_t> XdrReader::u32() {
  if (remaining() < 4) return std::nullopt;
  const std::uint32_t v = load_be32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> XdrReader::u64() {
  const auto hi = u32();
  const auto lo = u32();
  if (!hi.has_value() || !lo.has_value()) return std::nullopt;
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

std::optional<bool> XdrReader::boolean() {
  const auto v = u32();
  if (!v.has_value() || (*v != 0 && *v != 1)) return std::nullopt;
  return *v == 1;
}

std::optional<std::vector<std::uint8_t>> XdrReader::opaque(
    std::uint32_t max_len) {
  const auto len = u32();
  if (!len.has_value() || *len > max_len) return std::nullopt;
  return opaque_fixed(*len);
}

std::optional<std::string> XdrReader::str(std::uint32_t max_len) {
  const auto bytes = opaque(max_len);
  if (!bytes.has_value()) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

std::optional<std::vector<std::uint8_t>> XdrReader::opaque_fixed(
    std::uint32_t len) {
  const std::uint32_t padded = (len + 3) / 4 * 4;
  if (remaining() < padded) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_) + len);
  pos_ += padded;
  return out;
}

}  // namespace ldlp::rpc
