#include "rpc/nfs_lite.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ldlp::rpc {

namespace {
constexpr std::uint32_t kMaxIo = 8192;         ///< NFSv2 transfer cap.
constexpr std::uint32_t kMaxFileSize = 1 << 22;
constexpr std::size_t kDupCacheEntries = 128;
}  // namespace

// ---- MemFs -----------------------------------------------------------------

MemFs::MemFs() {
  Node root;
  root.attr.is_dir = true;
  nodes_[kRootHandle] = std::move(root);
}

const MemFs::Node* MemFs::node(FileHandle fh) const {
  const auto it = nodes_.find(fh);
  return it != nodes_.end() ? &it->second : nullptr;
}

MemFs::Node* MemFs::node(FileHandle fh) {
  const auto it = nodes_.find(fh);
  return it != nodes_.end() ? &it->second : nullptr;
}

std::optional<FileAttr> MemFs::getattr(FileHandle fh) const {
  const Node* n = node(fh);
  if (n == nullptr) return std::nullopt;
  return n->attr;
}

std::optional<FileHandle> MemFs::lookup(FileHandle dir,
                                        const std::string& name) const {
  const Node* d = node(dir);
  if (d == nullptr || !d->attr.is_dir) return std::nullopt;
  const auto it = d->names.find(name);
  if (it == d->names.end()) return std::nullopt;
  return it->second;
}

NfsStat MemFs::create(FileHandle dir, const std::string& name, bool is_dir,
                      FileHandle& out) {
  Node* d = node(dir);
  if (d == nullptr) return NfsStat::kStale;
  if (!d->attr.is_dir) return NfsStat::kNotDir;
  const auto existing = d->names.find(name);
  if (existing != d->names.end()) {
    out = existing->second;
    return NfsStat::kExist;
  }
  const FileHandle fh = next_handle_++;
  Node n;
  n.attr.is_dir = is_dir;
  nodes_[fh] = std::move(n);
  d->names[name] = fh;
  out = fh;
  return NfsStat::kOk;
}

NfsStat MemFs::read(FileHandle fh, std::uint32_t offset, std::uint32_t count,
                    std::vector<std::uint8_t>& out) const {
  const Node* n = node(fh);
  if (n == nullptr) return NfsStat::kStale;
  if (n->attr.is_dir) return NfsStat::kIsDir;
  out.clear();
  if (offset >= n->data.size()) return NfsStat::kOk;  // EOF: empty read
  const std::uint32_t take = std::min<std::uint32_t>(
      {count, kMaxIo, static_cast<std::uint32_t>(n->data.size()) - offset});
  out.assign(n->data.begin() + offset, n->data.begin() + offset + take);
  return NfsStat::kOk;
}

NfsStat MemFs::write(FileHandle fh, std::uint32_t offset,
                     std::span<const std::uint8_t> data) {
  Node* n = node(fh);
  if (n == nullptr) return NfsStat::kStale;
  if (n->attr.is_dir) return NfsStat::kIsDir;
  if (data.size() > kMaxIo) return NfsStat::kIo;
  const std::uint64_t end = static_cast<std::uint64_t>(offset) + data.size();
  if (end > kMaxFileSize) return NfsStat::kFBig;
  if (end > n->data.size()) n->data.resize(end);
  std::copy(data.begin(), data.end(), n->data.begin() + offset);
  n->attr.size = static_cast<std::uint32_t>(n->data.size());
  ++n->attr.mtime_ticks;
  return NfsStat::kOk;
}

std::vector<std::string> MemFs::readdir(FileHandle dir) const {
  std::vector<std::string> out;
  const Node* d = node(dir);
  if (d == nullptr || !d->attr.is_dir) return out;
  out.reserve(d->names.size());
  for (const auto& [name, fh] : d->names) {
    (void)fh;
    out.push_back(name);
  }
  return out;
}

// ---- XDR shapes ------------------------------------------------------------

namespace {

void write_attr(XdrWriter& w, const FileAttr& attr) {
  w.u32(attr.is_dir ? 2 : 1);  // NFDIR / NFREG
  w.u32(attr.mode);
  w.u32(attr.size);
  w.u64(attr.mtime_ticks);
}

std::optional<FileAttr> read_attr(XdrReader& r) {
  const auto type = r.u32();
  const auto mode = r.u32();
  const auto size = r.u32();
  const auto mtime = r.u64();
  if (!type.has_value() || !mode.has_value() || !size.has_value() ||
      !mtime.has_value())
    return std::nullopt;
  FileAttr attr;
  attr.is_dir = *type == 2;
  attr.mode = *mode;
  attr.size = *size;
  attr.mtime_ticks = *mtime;
  return attr;
}

}  // namespace

// ---- NfsServer -------------------------------------------------------------

NfsServer::NfsServer(stack::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  socket_ = host_.sockets().create(stack::SocketKind::kDatagram, 256 * 1024);
  const bool bound = host_.udp().bind(port_, socket_);
  LDLP_ASSERT_MSG(bound, "NFS port already bound");
}

std::size_t NfsServer::poll() {
  std::size_t handled = 0;
  while (auto dgram = host_.sockets().read_datagram(socket_)) {
    ++handled;
    stats_.bytes_in += dgram->payload.size();
    const auto decoded = decode_rpc(dgram->payload);
    if (!decoded.has_value() || !decoded->call.has_value()) {
      ++stats_.errors;
      continue;
    }
    const RpcCall& call = *decoded->call;
    ++stats_.calls;

    // Duplicate-request cache: a retried xid gets the cached reply
    // verbatim (so CREATE retries return the same handle).
    const auto cached = dup_cache_.find(call.xid);
    if (cached != dup_cache_.end()) {
      ++stats_.dup_cache_hits;
      stats_.bytes_out += cached->second.size();
      host_.udp().send(port_, dgram->from_ip, dgram->from_port,
                       cached->second);
      continue;
    }

    RpcReply reply;
    reply.xid = call.xid;
    if (call.prog != kNfsProgram) {
      reply.stat = AcceptStat::kProgUnavail;
    } else if (call.vers != kNfsVersion) {
      reply.stat = AcceptStat::kProgMismatch;
    } else {
      reply.results = dispatch(call, reply.stat);
    }
    auto bytes = encode_reply(reply);
    stats_.bytes_out += bytes.size();
    host_.udp().send(port_, dgram->from_ip, dgram->from_port, bytes);

    dup_cache_[call.xid] = std::move(bytes);
    dup_order_.push_back(call.xid);
    if (dup_order_.size() > kDupCacheEntries) {
      dup_cache_.erase(dup_order_.front());
      dup_order_.erase(dup_order_.begin());
    }
  }
  return handled;
}

std::vector<std::uint8_t> NfsServer::dispatch(const RpcCall& call,
                                              AcceptStat& stat) {
  stat = AcceptStat::kSuccess;
  XdrReader r(call.args);
  XdrWriter w;

  auto fail = [&](NfsStat err) {
    XdrWriter fw;
    fw.u32(static_cast<std::uint32_t>(err));
    ++stats_.errors;
    return fw.take();
  };

  switch (static_cast<NfsProc>(call.proc)) {
    case NfsProc::kNull:
      return {};
    case NfsProc::kGetattr: {
      const auto fh = r.u64();
      if (!fh.has_value()) break;
      const auto attr = fs_.getattr(*fh);
      if (!attr.has_value()) return fail(NfsStat::kStale);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      write_attr(w, *attr);
      return w.take();
    }
    case NfsProc::kLookup: {
      const auto dir = r.u64();
      const auto name = r.str(255);
      if (!dir.has_value() || !name.has_value()) break;
      const auto fh = fs_.lookup(*dir, *name);
      if (!fh.has_value()) return fail(NfsStat::kNoEnt);
      const auto attr = fs_.getattr(*fh);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      w.u64(*fh);
      write_attr(w, *attr);
      return w.take();
    }
    case NfsProc::kCreate: {
      const auto dir = r.u64();
      const auto name = r.str(255);
      if (!dir.has_value() || !name.has_value()) break;
      FileHandle fh = 0;
      const NfsStat result = fs_.create(*dir, *name, false, fh);
      if (result != NfsStat::kOk && result != NfsStat::kExist)
        return fail(result);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      w.u64(fh);
      write_attr(w, *fs_.getattr(fh));
      return w.take();
    }
    case NfsProc::kRead: {
      const auto fh = r.u64();
      const auto offset = r.u32();
      const auto count = r.u32();
      if (!fh.has_value() || !offset.has_value() || !count.has_value()) break;
      std::vector<std::uint8_t> data;
      const NfsStat result = fs_.read(*fh, *offset, *count, data);
      if (result != NfsStat::kOk) return fail(result);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      write_attr(w, *fs_.getattr(*fh));
      w.opaque(data);
      return w.take();
    }
    case NfsProc::kWrite: {
      const auto fh = r.u64();
      const auto offset = r.u32();
      const auto data = r.opaque(kMaxIo);
      if (!fh.has_value() || !offset.has_value() || !data.has_value()) break;
      const NfsStat result = fs_.write(*fh, *offset, *data);
      if (result != NfsStat::kOk) return fail(result);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      write_attr(w, *fs_.getattr(*fh));
      return w.take();
    }
    case NfsProc::kReaddir: {
      const auto dir = r.u64();
      if (!dir.has_value()) break;
      const auto attr = fs_.getattr(*dir);
      if (!attr.has_value()) return fail(NfsStat::kStale);
      if (!attr->is_dir) return fail(NfsStat::kNotDir);
      const auto names = fs_.readdir(*dir);
      w.u32(static_cast<std::uint32_t>(NfsStat::kOk));
      w.u32(static_cast<std::uint32_t>(names.size()));
      for (const std::string& name : names) w.str(name);
      return w.take();
    }
    default:
      stat = AcceptStat::kProcUnavail;
      return {};
  }
  stat = AcceptStat::kGarbageArgs;
  ++stats_.errors;
  return {};
}

// ---- NfsClient -------------------------------------------------------------

NfsClient::NfsClient(stack::Host& host, Config config, PumpFn pump)
    : host_(host), cfg_(config), pump_(std::move(pump)) {
  LDLP_ASSERT(cfg_.server_ip != 0 && pump_ != nullptr);
  socket_ = host_.sockets().create(stack::SocketKind::kDatagram, 256 * 1024);
  const bool bound = host_.udp().bind(cfg_.local_port, socket_);
  LDLP_ASSERT_MSG(bound, "NFS client port already bound");
}

std::optional<std::vector<std::uint8_t>> NfsClient::call(
    NfsProc proc, std::span<const std::uint8_t> args) {
  RpcCall rpc_call;
  rpc_call.xid = next_xid_++;
  rpc_call.prog = kNfsProgram;
  rpc_call.vers = kNfsVersion;
  rpc_call.proc = static_cast<std::uint32_t>(proc);
  rpc_call.args.assign(args.begin(), args.end());
  const auto wire_bytes = encode_call(rpc_call);

  for (std::uint32_t attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    ++stats_.calls;
    if (attempt > 0) ++stats_.retries;
    host_.udp().send(cfg_.local_port, cfg_.server_ip, cfg_.server_port,
                     wire_bytes);
    // Synchronous wait: pump the network a bounded number of rounds.
    for (int round = 0; round < 16; ++round) {
      pump_();
      while (auto dgram = host_.sockets().read_datagram(socket_)) {
        const auto decoded = decode_rpc(dgram->payload);
        if (!decoded.has_value() || !decoded->reply.has_value()) continue;
        if (decoded->reply->xid != rpc_call.xid) continue;  // stale
        if (decoded->reply->stat != AcceptStat::kSuccess) {
          ++stats_.failures;
          return std::nullopt;
        }
        ++stats_.replies;
        return decoded->reply->results;
      }
    }
    // Simulated timeout before the retry, doubling per attempt up to the
    // cap (classic RPC backoff; keeps a dead server cheap).
    double timeout = cfg_.retry_sec;
    for (std::uint32_t i = 0; i < attempt && timeout < cfg_.retry_max_sec; ++i)
      timeout *= 2.0;
    host_.advance(std::min(timeout, cfg_.retry_max_sec));
  }
  ++stats_.failures;
  return std::nullopt;
}

std::optional<FileAttr> NfsClient::getattr(FileHandle fh) {
  XdrWriter w;
  w.u64(fh);
  const auto results = call(NfsProc::kGetattr, w.bytes());
  if (!results.has_value()) return std::nullopt;
  XdrReader r(*results);
  const auto status = r.u32();
  if (!status.has_value() ||
      *status != static_cast<std::uint32_t>(NfsStat::kOk))
    return std::nullopt;
  return read_attr(r);
}

std::optional<FileHandle> NfsClient::lookup(FileHandle dir,
                                            const std::string& name) {
  XdrWriter w;
  w.u64(dir);
  w.str(name);
  const auto results = call(NfsProc::kLookup, w.bytes());
  if (!results.has_value()) return std::nullopt;
  XdrReader r(*results);
  const auto status = r.u32();
  if (!status.has_value() ||
      *status != static_cast<std::uint32_t>(NfsStat::kOk))
    return std::nullopt;
  return r.u64();
}

std::optional<FileHandle> NfsClient::create(FileHandle dir,
                                            const std::string& name) {
  XdrWriter w;
  w.u64(dir);
  w.str(name);
  const auto results = call(NfsProc::kCreate, w.bytes());
  if (!results.has_value()) return std::nullopt;
  XdrReader r(*results);
  const auto status = r.u32();
  if (!status.has_value() ||
      *status != static_cast<std::uint32_t>(NfsStat::kOk))
    return std::nullopt;
  return r.u64();
}

std::optional<std::vector<std::uint8_t>> NfsClient::read(FileHandle fh,
                                                         std::uint32_t offset,
                                                         std::uint32_t count) {
  XdrWriter w;
  w.u64(fh);
  w.u32(offset);
  w.u32(count);
  const auto results = call(NfsProc::kRead, w.bytes());
  if (!results.has_value()) return std::nullopt;
  XdrReader r(*results);
  const auto status = r.u32();
  if (!status.has_value() ||
      *status != static_cast<std::uint32_t>(NfsStat::kOk))
    return std::nullopt;
  if (!read_attr(r).has_value()) return std::nullopt;
  return r.opaque();
}

bool NfsClient::write(FileHandle fh, std::uint32_t offset,
                      std::span<const std::uint8_t> data) {
  XdrWriter w;
  w.u64(fh);
  w.u32(offset);
  w.opaque(data);
  const auto results = call(NfsProc::kWrite, w.bytes());
  if (!results.has_value()) return false;
  XdrReader r(*results);
  const auto status = r.u32();
  return status.has_value() &&
         *status == static_cast<std::uint32_t>(NfsStat::kOk);
}

std::optional<std::vector<std::string>> NfsClient::readdir(FileHandle fh) {
  XdrWriter w;
  w.u64(fh);
  const auto results = call(NfsProc::kReaddir, w.bytes());
  if (!results.has_value()) return std::nullopt;
  XdrReader r(*results);
  const auto status = r.u32();
  if (!status.has_value() ||
      *status != static_cast<std::uint32_t>(NfsStat::kOk))
    return std::nullopt;
  const auto count = r.u32();
  if (!count.has_value() || *count > 4096) return std::nullopt;
  std::vector<std::string> names;
  names.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = r.str(255);
    if (!name.has_value()) return std::nullopt;
    names.push_back(std::move(*name));
  }
  return names;
}

}  // namespace ldlp::rpc
