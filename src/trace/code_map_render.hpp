// Figure 1 renderer: the "plot of active code" as a text table.
//
// For every registered function, shows its total size and the bytes of it
// actually touched in each phase of the receive path, followed by the
// per-phase footers (code/read/write bytes and reference counts) that the
// paper prints under each column.
#pragma once

#include <string>

#include "trace/code_map.hpp"
#include "trace/trace_buffer.hpp"
#include "trace/working_set.hpp"

namespace ldlp::trace {

[[nodiscard]] std::string render_code_map(const CodeMap& code,
                                          const TraceBuffer& trace,
                                          std::uint32_t line_bytes = 32);

}  // namespace ldlp::trace
