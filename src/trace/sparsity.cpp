#include "trace/sparsity.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ldlp::trace {

std::vector<Interval> make_intervals(std::uint32_t region_size,
                                     std::uint32_t active_bytes,
                                     const SparsityParams& params,
                                     std::uint64_t seed) {
  std::vector<Interval> out;
  if (region_size == 0 || active_bytes == 0) return out;
  active_bytes = std::min(active_bytes, region_size);

  if (active_bytes == region_size) {
    out.push_back(Interval{0, region_size});
    return out;
  }

  const std::uint32_t mean_run = std::max(params.mean_run, params.min_run);
  const auto n_runs = std::max<std::uint32_t>(
      1, (active_bytes + mean_run / 2) / mean_run);

  // Split active bytes into n runs with +/-50% jitter, then distribute the
  // slack (gaps) between them with matching jitter. Everything derives from
  // the seed, so footprints are stable across processes and runs.
  Rng rng(seed);
  std::vector<std::uint32_t> run_len(n_runs);
  std::uint32_t assigned = 0;
  for (std::uint32_t i = 0; i < n_runs; ++i) {
    const std::uint32_t remaining_runs = n_runs - i;
    const std::uint32_t remaining = active_bytes - assigned;
    std::uint32_t base = remaining / remaining_runs;
    std::uint32_t jitter =
        base > params.min_run
            ? static_cast<std::uint32_t>(rng.bounded(base - params.min_run + 1))
            : 0;
    std::uint32_t len = (i + 1 == n_runs)
                            ? remaining
                            : std::max(params.min_run, base - jitter / 2);
    len = std::min(len, remaining);
    run_len[i] = len;
    assigned += len;
  }

  const std::uint32_t total_gap = region_size - active_bytes;
  // n_runs+1 gap slots (before first run, between runs, after last).
  const std::uint32_t n_gaps = n_runs + 1;
  std::vector<std::uint32_t> gap_len(n_gaps);
  std::uint32_t gap_assigned = 0;
  for (std::uint32_t i = 0; i < n_gaps; ++i) {
    const std::uint32_t remaining_gaps = n_gaps - i;
    const std::uint32_t remaining = total_gap - gap_assigned;
    std::uint32_t base = remaining / remaining_gaps;
    std::uint32_t len =
        (i + 1 == n_gaps)
            ? remaining
            : (base != 0 ? static_cast<std::uint32_t>(rng.bounded(2 * base + 1))
                         : 0);
    len = std::min(len, remaining);
    gap_len[i] = len;
    gap_assigned += len;
  }

  std::uint32_t cursor = 0;
  for (std::uint32_t i = 0; i < n_runs; ++i) {
    cursor += gap_len[i];
    if (run_len[i] != 0) out.push_back(Interval{cursor, run_len[i]});
    cursor += run_len[i];
  }
  LDLP_DASSERT(cursor + gap_len[n_gaps - 1] == region_size);
  return out;
}

std::uint64_t covered_bytes(const std::vector<Interval>& ivs) {
  std::uint64_t total = 0;
  for (const auto& iv : ivs) total += iv.len;
  return total;
}

}  // namespace ldlp::trace
