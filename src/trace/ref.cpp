#include "trace/ref.hpp"

namespace ldlp::trace {

std::string_view layer_name(LayerClass layer) noexcept {
  switch (layer) {
    case LayerClass::kDevice: return "Device";
    case LayerClass::kEthernet: return "Ethernet";
    case LayerClass::kIp: return "IP";
    case LayerClass::kTcp: return "TCP";
    case LayerClass::kSocketLow: return "Socket low";
    case LayerClass::kSocketHigh: return "Socket high";
    case LayerClass::kKernelEntry: return "Kernel entry/exit";
    case LayerClass::kProcessControl: return "Process control";
    case LayerClass::kBufferMgmt: return "Buffer mgmt";
    case LayerClass::kCopyChecksum: return "Copy, checksum";
    case LayerClass::kPacketData: return "(packet data)";
    case LayerClass::kStack: return "(stack)";
    case LayerClass::kOther: return "(other)";
    case LayerClass::kCount: break;
  }
  return "?";
}

std::string_view phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kEntry: return "entry";
    case Phase::kPacketIntr: return "pkt intr";
    case Phase::kExit: return "exit";
    case Phase::kCount: break;
  }
  return "?";
}

}  // namespace ldlp::trace
