#include "trace/code_map.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace ldlp::trace {

FnId CodeMap::define(std::string name, LayerClass layer, std::uint32_t size,
                     std::uint32_t active_bytes) {
  LDLP_ASSERT(size > 0);
  if (active_bytes == 0 || active_bytes > size) active_bytes = size;
  CodeFn fn;
  fn.name = std::move(name);
  fn.layer = layer;
  fn.size = size;
  fn.active_bytes = active_bytes;
  fn.base = text_base_ + next_offset_;
  // Functions are padded to 16-byte boundaries like real linkers do.
  next_offset_ += (size + 15u) / 16u * 16u;
  fns_.push_back(std::move(fn));
  return static_cast<FnId>(fns_.size() - 1);
}

FnId CodeMap::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    if (fns_[i].name == name) return static_cast<FnId>(i);
  }
  return static_cast<FnId>(fns_.size());
}

void CodeMap::record_call(TraceBuffer& buffer, FnId id, double fraction,
                          double revisit) const {
  if (!buffer.enabled()) return;
  const CodeFn& fn = fns_.at(id);
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto bytes = static_cast<std::uint32_t>(
      std::lround(fraction * fn.active_bytes));
  if (bytes == 0) return;
  // The full-call footprint is a pure function of the function identity
  // (seeded by its base address); partial calls touch a *prefix* of it.
  // Two properties follow, both matching real traces: repeated calls touch
  // the same bytes (re-execution does not grow the working set), and a
  // partial call's bytes are a subset of a full call's.
  const auto full =
      make_intervals(fn.size, fn.active_bytes, sparsity_, fn.base);
  std::uint32_t budget = bytes;
  for (const auto& iv : full) {
    if (budget == 0) break;
    const std::uint32_t len = std::min(iv.len, budget);
    budget -= len;
    const auto weight = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(
               revisit * static_cast<double>(len) / 4.0)));
    buffer.record(RefKind::kCode, fn.layer, fn.base + iv.off, len, weight);
  }
}

}  // namespace ldlp::trace
