#include "trace/code_map_render.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <unordered_set>
#include <vector>

namespace ldlp::trace {

std::string render_code_map(const CodeMap& code, const TraceBuffer& trace,
                            std::uint32_t line_bytes) {
  // Unique code bytes touched per (function, phase), line-rasterised.
  const std::uint32_t shift =
      static_cast<std::uint32_t>(std::countr_zero(line_bytes));

  struct Row {
    const CodeFn* fn = nullptr;
    std::array<std::unordered_set<std::uint64_t>, kNumPhases> lines;
  };
  std::vector<Row> rows(code.count());
  for (std::size_t i = 0; i < code.count(); ++i)
    rows[i].fn = &code.fn(static_cast<FnId>(i));

  auto row_for = [&](std::uint64_t addr) -> Row* {
    // Functions are few; linear probe keeps this dependency-free.
    for (auto& row : rows) {
      if (addr >= row.fn->base && addr < row.fn->base + row.fn->size)
        return &row;
    }
    return nullptr;
  };

  for (const MemRef& ref : trace.refs()) {
    if (ref.kind != RefKind::kCode || ref.len == 0) continue;
    Row* row = row_for(ref.addr);
    if (row == nullptr) continue;
    const std::uint64_t first = ref.addr >> shift;
    const std::uint64_t last = (ref.addr + ref.len - 1) >> shift;
    auto& set = row->lines[static_cast<std::size_t>(ref.phase)];
    for (std::uint64_t line = first; line <= last; ++line) set.insert(line);
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.fn->base < b.fn->base;
  });

  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof buf, "%-24s %7s | %8s %8s %8s   (touched bytes)\n",
                "function", "size", "entry", "pkt intr", "exit");
  out += buf;
  out += std::string(72, '-') + "\n";
  for (const Row& row : rows) {
    std::uint64_t touched[kNumPhases];
    std::uint64_t any = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      touched[p] = row.lines[p].size() * line_bytes;
      any += touched[p];
    }
    if (any == 0) continue;
    std::snprintf(buf, sizeof buf, "%-24s %7u | %8llu %8llu %8llu\n",
                  row.fn->name.c_str(), row.fn->size,
                  static_cast<unsigned long long>(touched[0]),
                  static_cast<unsigned long long>(touched[1]),
                  static_cast<unsigned long long>(touched[2]));
    out += buf;
  }

  const auto ws = analyze_working_set(trace, line_bytes);
  out += std::string(72, '-') + "\n";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const PhaseSummary& ph = ws.phases[p];
    std::snprintf(buf, sizeof buf,
                  "%-9s Code: %6llu bytes %7llu refs | Read: %6llu/%llu | "
                  "Write: %6llu/%llu\n",
                  std::string(phase_name(static_cast<Phase>(p))).c_str(),
                  static_cast<unsigned long long>(ph.code_bytes),
                  static_cast<unsigned long long>(ph.code_refs),
                  static_cast<unsigned long long>(ph.read_bytes),
                  static_cast<unsigned long long>(ph.read_refs),
                  static_cast<unsigned long long>(ph.write_bytes),
                  static_cast<unsigned long long>(ph.write_refs));
    out += buf;
  }
  return out;
}

}  // namespace ldlp::trace
