// Basic-block sparsity model.
//
// The paper observes (section 5.4, Table 3) that only ~75% of instruction
// bytes fetched into the cache are executed: touched code is a set of runs
// (executed basic blocks) separated by gaps (error paths, untaken
// branches). The same holds more strongly for read-only data, which "tends
// to be sparse" — small items scattered through larger tables.
//
// make_intervals() synthesises such a touch pattern: `active_bytes` spread
// over a `region_size` region as runs with a given mean length, placed
// deterministically from a seed so the same function always produces the
// same footprint.
#pragma once

#include <cstdint>
#include <vector>

namespace ldlp::trace {

struct Interval {
  std::uint32_t off = 0;
  std::uint32_t len = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Sparsity knobs per reference class. Means are in bytes. Calibrated in
/// stack/footprints.cpp so that rasterising at different cache-line sizes
/// reproduces the paper's Table 3 deltas.
struct SparsityParams {
  std::uint32_t mean_run = 96;  ///< Mean executed-run / touched-item length.
  std::uint32_t min_run = 8;    ///< Shortest run generated.
};

/// Spread `active_bytes` over [0, region_size) as non-overlapping,
/// ascending runs. Returns intervals covering exactly min(active_bytes,
/// region_size) bytes (clamped). Deterministic in (region_size,
/// active_bytes, params, seed).
[[nodiscard]] std::vector<Interval> make_intervals(std::uint32_t region_size,
                                                   std::uint32_t active_bytes,
                                                   const SparsityParams& params,
                                                   std::uint64_t seed);

/// Total bytes covered by a set of intervals.
[[nodiscard]] std::uint64_t covered_bytes(const std::vector<Interval>& ivs);

}  // namespace ldlp::trace
