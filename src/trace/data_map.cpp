#include "trace/data_map.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace ldlp::trace {

RegionId DataMap::define(std::string name, LayerClass layer, DataIntent intent,
                         std::uint32_t size, std::uint32_t active_bytes) {
  LDLP_ASSERT(size > 0);
  if (active_bytes == 0 || active_bytes > size) active_bytes = size;
  DataRegion region;
  region.name = std::move(name);
  region.layer = layer;
  region.intent = intent;
  region.size = size;
  region.active_bytes = active_bytes;
  region.base = data_base_ + next_offset_;
  next_offset_ += (size + 15u) / 16u * 16u;
  regions_.push_back(std::move(region));
  return static_cast<RegionId>(regions_.size() - 1);
}

RegionId DataMap::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return static_cast<RegionId>(i);
  }
  return static_cast<RegionId>(regions_.size());
}

void DataMap::record_touch(TraceBuffer& buffer, RegionId id,
                           double fraction) const {
  if (!buffer.enabled()) return;
  const DataRegion& region = regions_.at(id);
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto bytes = static_cast<std::uint32_t>(
      std::lround(fraction * region.active_bytes));
  if (bytes == 0) return;
  const SparsityParams& sparsity =
      region.intent == DataIntent::kReadOnly ? ro_sparsity_ : mut_sparsity_;
  const auto full =
      make_intervals(region.size, region.active_bytes, sparsity, region.base);
  std::uint32_t budget = bytes;
  for (const auto& iv : full) {
    if (budget == 0) break;
    const std::uint32_t len = std::min(iv.len, budget);
    budget -= len;
    const auto items = std::max<std::uint32_t>(1, len / 8);
    buffer.record(RefKind::kRead, region.layer, region.base + iv.off, len,
                  items);
    if (region.intent == DataIntent::kMutable) {
      buffer.record(RefKind::kWrite, region.layer, region.base + iv.off, len,
                    items);
    }
  }
}

}  // namespace ldlp::trace
