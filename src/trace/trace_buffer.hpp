// Trace buffer: an in-memory log of memory references.
//
// Equivalent of the paper's kernel trace buffer filled by the Alpha
// instruction simulator; here the instrumented mini-stack writes into it
// directly. Tracing can be switched off so the same stack code runs at
// full speed when no measurement is wanted (the paper's tracing flag).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/ref.hpp"

namespace ldlp::trace {

class TraceBuffer {
 public:
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void set_phase(Phase phase) noexcept { phase_ = phase; }
  [[nodiscard]] Phase phase() const noexcept { return phase_; }

  void record(RefKind kind, LayerClass layer, std::uint64_t addr,
              std::uint32_t len, std::uint32_t weight = 1) {
    if (!enabled_) return;
    refs_.push_back(MemRef{addr, len, weight, kind, layer, phase_});
  }

  void clear() noexcept { refs_.clear(); }

  [[nodiscard]] const std::vector<MemRef>& refs() const noexcept {
    return refs_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }

 private:
  std::vector<MemRef> refs_;
  Phase phase_ = Phase::kEntry;
  bool enabled_ = false;
};

}  // namespace ldlp::trace
