// Code-footprint registry.
//
// Substitute for tracing real kernel text (see DESIGN.md section 2): each
// instrumented function in the mini-stack registers here with a byte size
// taken from the paper's Figure 1 (e.g. tcp_input = 11872 bytes) and a
// layer classification for Table 1. Functions are laid out sequentially in
// a synthetic text segment. When a function runs, record_call() logs code
// references over its executed-byte intervals; the fraction of the body
// executed can vary per call site (a fast-path call through tcp_input
// touches far less of it than a full call).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/ref.hpp"
#include "trace/sparsity.hpp"
#include "trace/trace_buffer.hpp"

namespace ldlp::trace {

using FnId = std::uint32_t;

struct CodeFn {
  std::string name;
  LayerClass layer = LayerClass::kOther;
  std::uint32_t size = 0;          ///< Total body size in bytes.
  std::uint32_t active_bytes = 0;  ///< Default executed bytes per full call.
  std::uint64_t base = 0;          ///< Assigned text address.
};

class CodeMap {
 public:
  /// Text segment starts at a recognisable non-zero base so code and data
  /// addresses never collide.
  explicit CodeMap(std::uint64_t text_base = 0x1000'0000,
                   SparsityParams sparsity = {96, 8})
      : text_base_(text_base), sparsity_(sparsity) {}

  /// Register a function. `active_bytes` defaults to the whole body.
  FnId define(std::string name, LayerClass layer, std::uint32_t size,
              std::uint32_t active_bytes = 0);

  [[nodiscard]] const CodeFn& fn(FnId id) const { return fns_.at(id); }
  [[nodiscard]] std::size_t count() const noexcept { return fns_.size(); }
  [[nodiscard]] const std::vector<CodeFn>& functions() const noexcept {
    return fns_;
  }

  /// Look up by name; returns count() if absent.
  [[nodiscard]] FnId find(std::string_view name) const noexcept;

  /// Log one call executing `fraction` of the function's active bytes.
  /// `revisit` scales the reference count (loops re-execute instructions
  /// without touching new bytes): refs ~= bytes/4 * revisit.
  void record_call(TraceBuffer& buffer, FnId id, double fraction = 1.0,
                   double revisit = 1.0) const;

  /// Sum of registered function sizes (the "text segment" extent).
  [[nodiscard]] std::uint64_t text_bytes() const noexcept {
    return next_offset_;
  }

 private:
  std::uint64_t text_base_;
  std::uint64_t next_offset_ = 0;
  SparsityParams sparsity_;
  std::vector<CodeFn> fns_;
};

}  // namespace ldlp::trace
