// Working-set analysis over a reference trace.
//
// Implements the paper's Table 1 / Table 3 accounting: rasterise every
// reference onto cache lines of a chosen size; classify each line as code,
// read-only data (never written during the trace) or mutable data (written
// at least once); attribute each line to the layer that touched it first.
// Packet contents and stack traffic are recorded in the trace but excluded
// from the totals, as in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/ref.hpp"
#include "trace/trace_buffer.hpp"

namespace ldlp::trace {

struct LayerWorkingSet {
  std::uint64_t code_lines = 0;
  std::uint64_t ro_lines = 0;
  std::uint64_t mut_lines = 0;

  [[nodiscard]] std::uint64_t total_lines() const noexcept {
    return code_lines + ro_lines + mut_lines;
  }
};

/// Per-phase footer statistics (Figure 1): unique bytes touched during the
/// phase (line-rasterised) and total reference counts, split by kind.
struct PhaseSummary {
  std::uint64_t code_bytes = 0;
  std::uint64_t code_refs = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t read_refs = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t write_refs = 0;
};

struct WorkingSetAnalysis {
  std::uint32_t line_bytes = 32;
  std::array<LayerWorkingSet, kNumLayerClasses> layers{};
  LayerWorkingSet total{};
  std::array<PhaseSummary, kNumPhases> phases{};

  [[nodiscard]] std::uint64_t code_bytes() const noexcept {
    return total.code_lines * line_bytes;
  }
  [[nodiscard]] std::uint64_t ro_bytes() const noexcept {
    return total.ro_lines * line_bytes;
  }
  [[nodiscard]] std::uint64_t mut_bytes() const noexcept {
    return total.mut_lines * line_bytes;
  }

  /// Render the Table 1 layout (per-layer byte counts at this line size).
  [[nodiscard]] std::string format_table() const;
};

[[nodiscard]] WorkingSetAnalysis analyze_working_set(const TraceBuffer& trace,
                                                     std::uint32_t line_bytes);

}  // namespace ldlp::trace
