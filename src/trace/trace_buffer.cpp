#include "trace/trace_buffer.hpp"

// TraceBuffer is header-only; this file anchors the translation unit.
