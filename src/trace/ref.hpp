// Memory-reference record types for working-set analysis.
//
// Mirrors the paper's tracing apparatus (section 2.2): every instruction
// fetch and data reference on the receive path is logged, tagged with the
// protocol layer of the code executing at the time and with the phase of
// the receive path (Table 2: entry / device interrupt / exit).
#pragma once

#include <cstdint>
#include <string_view>

namespace ldlp::trace {

enum class RefKind : std::uint8_t { kCode, kRead, kWrite };

/// Table 1 row classification. kPacketData and kStack exist so those
/// references can be recorded but excluded from working-set accounting,
/// exactly as the paper excludes packet contents and stack accesses.
enum class LayerClass : std::uint8_t {
  kDevice,
  kEthernet,
  kIp,
  kTcp,
  kSocketLow,
  kSocketHigh,
  kKernelEntry,
  kProcessControl,
  kBufferMgmt,
  kCopyChecksum,
  kPacketData,  ///< Message contents; excluded from Table 1.
  kStack,       ///< Call-stack traffic; excluded from Table 1.
  kOther,
  kCount
};

inline constexpr std::size_t kNumLayerClasses =
    static_cast<std::size_t>(LayerClass::kCount);

[[nodiscard]] std::string_view layer_name(LayerClass layer) noexcept;

/// Whether the layer participates in Table 1 working-set totals.
[[nodiscard]] constexpr bool counted_in_working_set(LayerClass layer) noexcept {
  return layer != LayerClass::kPacketData && layer != LayerClass::kStack;
}

/// Table 2 phases of the receive & acknowledge path.
enum class Phase : std::uint8_t { kEntry, kPacketIntr, kExit, kCount };

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] std::string_view phase_name(Phase phase) noexcept;

/// One logged reference covering the byte interval [addr, addr+len).
/// `weight` is the number of individual CPU references the record stands
/// for (a 40-iteration loop over one line is one record with weight 40);
/// working-set byte/line accounting ignores weight, reference *counts*
/// (Figure 1 footers) sum it.
struct MemRef {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;
  std::uint32_t weight = 1;
  RefKind kind = RefKind::kRead;
  LayerClass layer = LayerClass::kOther;
  Phase phase = Phase::kEntry;
};

}  // namespace ldlp::trace
