#include "trace/working_set.hpp"

#include <bit>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"

namespace ldlp::trace {

namespace {

struct LineInfo {
  LayerClass first_layer = LayerClass::kOther;
  bool is_code = false;
  bool written = false;
};

}  // namespace

WorkingSetAnalysis analyze_working_set(const TraceBuffer& trace,
                                       std::uint32_t line_bytes) {
  LDLP_ASSERT_MSG(line_bytes >= 1 && std::has_single_bit(line_bytes),
                  "line size must be a power of two");
  const std::uint32_t shift =
      static_cast<std::uint32_t>(std::countr_zero(line_bytes));

  WorkingSetAnalysis out;
  out.line_bytes = line_bytes;

  std::unordered_map<std::uint64_t, LineInfo> lines;
  lines.reserve(trace.size());

  // Per-phase unique-line sets for the Figure 1 footers.
  std::array<std::array<std::unordered_set<std::uint64_t>, 3>, kNumPhases>
      phase_lines;

  for (const MemRef& ref : trace.refs()) {
    if (ref.len == 0) continue;
    const std::uint64_t first = ref.addr >> shift;
    const std::uint64_t last = (ref.addr + ref.len - 1) >> shift;
    const auto phase = static_cast<std::size_t>(ref.phase);
    const auto kind = static_cast<std::size_t>(ref.kind);

    PhaseSummary& summary = out.phases[phase];
    switch (ref.kind) {
      case RefKind::kCode: summary.code_refs += ref.weight; break;
      case RefKind::kRead: summary.read_refs += ref.weight; break;
      case RefKind::kWrite: summary.write_refs += ref.weight; break;
    }

    for (std::uint64_t line = first; line <= last; ++line) {
      phase_lines[phase][kind].insert(line);
      auto [it, inserted] = lines.try_emplace(line);
      LineInfo& info = it->second;
      if (inserted) {
        info.first_layer = ref.layer;
        info.is_code = ref.kind == RefKind::kCode;
      }
      if (ref.kind == RefKind::kWrite) info.written = true;
    }
  }

  for (std::size_t p = 0; p < kNumPhases; ++p) {
    out.phases[p].code_bytes = phase_lines[p][0].size() * line_bytes;
    out.phases[p].read_bytes = phase_lines[p][1].size() * line_bytes;
    out.phases[p].write_bytes = phase_lines[p][2].size() * line_bytes;
  }

  for (const auto& [line, info] : lines) {
    (void)line;
    if (!counted_in_working_set(info.first_layer)) continue;
    LayerWorkingSet& layer = out.layers[static_cast<std::size_t>(info.first_layer)];
    if (info.is_code) {
      ++layer.code_lines;
      ++out.total.code_lines;
    } else if (info.written) {
      ++layer.mut_lines;
      ++out.total.mut_lines;
    } else {
      ++layer.ro_lines;
      ++out.total.ro_lines;
    }
  }

  return out;
}

std::string WorkingSetAnalysis::format_table() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-20s %10s %10s %10s\n", "Layer", "Code",
                "RO data", "Mut data");
  out += buf;
  for (std::size_t i = 0; i < kNumLayerClasses; ++i) {
    const auto layer = static_cast<LayerClass>(i);
    if (!counted_in_working_set(layer)) continue;
    const LayerWorkingSet& ws = layers[i];
    if (ws.total_lines() == 0) continue;
    std::snprintf(buf, sizeof buf, "%-20s %10llu %10llu %10llu\n",
                  std::string(layer_name(layer)).c_str(),
                  static_cast<unsigned long long>(ws.code_lines * line_bytes),
                  static_cast<unsigned long long>(ws.ro_lines * line_bytes),
                  static_cast<unsigned long long>(ws.mut_lines * line_bytes));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%-20s %10llu %10llu %10llu\n", "Total",
                static_cast<unsigned long long>(code_bytes()),
                static_cast<unsigned long long>(ro_bytes()),
                static_cast<unsigned long long>(mut_bytes()));
  out += buf;
  return out;
}

}  // namespace ldlp::trace
