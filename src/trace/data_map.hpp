// Data-footprint registry.
//
// Companion to CodeMap for the static and heap data the receive path
// touches: protocol control blocks, socket buffers, dispatch tables,
// interrupt vectors, statistics counters. Regions are laid out in a
// synthetic data segment; a touch logs references over a sparse item
// pattern (read-only kernel data is typically small items scattered
// through larger tables — section 2.1 notes it "tends to be sparse").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/ref.hpp"
#include "trace/sparsity.hpp"
#include "trace/trace_buffer.hpp"

namespace ldlp::trace {

using RegionId = std::uint32_t;

/// Intent of a data region. The analyzer decides read-only vs mutable from
/// the observed references (a line is mutable iff something wrote it), so
/// this only controls which kinds of touches the region emits.
enum class DataIntent : std::uint8_t { kReadOnly, kMutable };

struct DataRegion {
  std::string name;
  LayerClass layer = LayerClass::kOther;
  DataIntent intent = DataIntent::kReadOnly;
  std::uint32_t size = 0;          ///< Region extent in bytes.
  std::uint32_t active_bytes = 0;  ///< Touched bytes per full touch.
  std::uint64_t base = 0;
};

class DataMap {
 public:
  explicit DataMap(std::uint64_t data_base = 0x4000'0000,
                   SparsityParams ro_sparsity = {20, 4},
                   SparsityParams mut_sparsity = {14, 4})
      : data_base_(data_base),
        ro_sparsity_(ro_sparsity),
        mut_sparsity_(mut_sparsity) {}

  RegionId define(std::string name, LayerClass layer, DataIntent intent,
                  std::uint32_t size, std::uint32_t active_bytes = 0);

  [[nodiscard]] const DataRegion& region(RegionId id) const {
    return regions_.at(id);
  }
  [[nodiscard]] std::size_t count() const noexcept { return regions_.size(); }
  [[nodiscard]] const std::vector<DataRegion>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] RegionId find(std::string_view name) const noexcept;

  /// Log one touch over `fraction` of the region's active bytes. Read-only
  /// regions emit reads; mutable regions emit a read and a write per item
  /// (read-modify-write of counters and control blocks).
  void record_touch(TraceBuffer& buffer, RegionId id,
                    double fraction = 1.0) const;

  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    return next_offset_;
  }

 private:
  std::uint64_t data_base_;
  std::uint64_t next_offset_ = 0;
  SparsityParams ro_sparsity_;
  SparsityParams mut_sparsity_;
  std::vector<DataRegion> regions_;
};

}  // namespace ldlp::trace
