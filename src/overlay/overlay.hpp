// ldlp::overlay — self-healing membership + epidemic dissemination.
//
// The fabric (ldlp::net) proved the *transport* heals under partitions,
// flaps and host churn; this layer proves an *application* built on it
// converges. Two cooperating protocols run as one UDP endpoint per
// stack::Host, in the HyParView / PlumTree style:
//
//   * Membership — a small ACTIVE view (the peers we gossip with and
//     probe) plus a larger PASSIVE view (repair candidates). Nodes join
//     through any contact; the contact propagates ForwardJoin random
//     walks so the joiner lands in active views across the overlay.
//     Periodic shuffles exchange passive samples to keep repair material
//     fresh. An active peer that stops answering probes (capped
//     exponential backoff, then declared dead) is reactively replaced by
//     promoting a passive member — the repair path the churn oracles
//     guard, and the path the mutation check deliberately reverts.
//
//   * Dissemination — broadcasts flood eagerly along a subset of active
//     links (the spanning tree) and lazily elsewhere: non-tree peers get
//     IHAVE digests instead of payloads. A node that hears IHAVE for a
//     message it never received grafts the announcing link into the tree
//     (graft-on-miss); a node that receives a duplicate payload prunes
//     the redundant link (prune-on-duplicate). Cuts heal the same way:
//     the periodic digest re-announces recent ids, so a subtree orphaned
//     by a partition pulls itself back in via graft once the fabric
//     heals.
//
// Everything is deterministic: per-node RNG seeded from (config seed,
// node id), timers driven from poll(now) off the shared fabric clock,
// no wall-clock anywhere — so gossip seeds replay and ddmin-shrink
// exactly like transport seeds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "check/overlay_audit.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::overlay {

/// Nodes are identified by their IPv4 address (unique per fabric host).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

/// (origin, seq) — the PlumTree message id.
struct MsgId {
  NodeId origin = kNoNode;
  std::uint32_t seq = 0;

  [[nodiscard]] std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
  friend bool operator==(const MsgId&, const MsgId&) = default;
};

struct MembershipConfig {
  std::size_t active_max = 4;    ///< HyParView active-view degree bound.
  std::size_t passive_max = 16;  ///< Passive (repair candidate) bound.
  std::uint8_t arwl = 4;  ///< ForwardJoin active random-walk length.
  std::uint8_t prwl = 2;  ///< Walk length at which joiner enters passive.
  double shuffle_interval_sec = 0.6;
  std::size_t shuffle_active = 2;   ///< Active ids per shuffle sample.
  std::size_t shuffle_passive = 4;  ///< Passive ids per shuffle sample.
  /// Failure detector: probe an active peer only when nothing has been
  /// heard from it for probe_idle_sec (traffic doubles as keepalive — the
  /// suppressed probes are counted, the scale-headroom satellite's
  /// "lazier keepalive" at the overlay layer). A probe that goes
  /// unanswered retries on a doubling backoff capped at
  /// probe_backoff_max_sec; probe_failures misses declare the peer dead.
  double probe_idle_sec = 0.6;
  double probe_timeout_sec = 0.3;
  double probe_backoff_max_sec = 1.2;
  int probe_failures = 3;
  /// Join / repair retry backoff (doubling, capped).
  double join_retry_sec = 0.4;
  double join_backoff_max_sec = 3.2;
  /// THE MUTATION-CHECK KNOB. Gates the reactive repair path: promoting a
  /// passive member when an active peer dies (or disconnects us), and
  /// re-joining the overlay after a host restart wipes our state. Always
  /// on in production; the chaos tests revert it to prove the overlay
  /// oracles catch the resulting partition and ddmin isolates the churn
  /// episode that triggered it.
  bool enable_repair = true;
};

struct PlumtreeConfig {
  /// Graft-on-miss: first IHAVE for an unseen id arms a timer; on expiry
  /// the node grafts the announcing link and asks for the payload,
  /// retrying further announcers on a doubling backoff.
  double graft_timeout_sec = 0.2;
  double graft_backoff_max_sec = 1.6;
  /// Periodic anti-entropy: every digest_interval_sec each active peer
  /// (eager and lazy alike) gets an IHAVE of the most recent ids. This is
  /// what makes dissemination *eventually reliable* over lossy UDP — a
  /// lost eager push or lost IHAVE is re-announced until grafted.
  double digest_interval_sec = 0.5;
  std::size_t digest_window = 128;  ///< Recent ids per digest.
  std::size_t ihave_batch_max = 16;  ///< Ids per IHAVE datagram.
};

struct OverlayConfig {
  std::uint16_t port = 7946;  ///< UDP port (both ends).
  std::uint64_t seed = 1;     ///< Mixed with the node id per-node RNG.
  MembershipConfig membership{};
  PlumtreeConfig plumtree{};
};

/// Monotonic protocol counters. Like every stats struct in the repo they
/// describe the machine, not the incarnation: a host restart wipes
/// protocol state but never the ledger.
struct OverlayStats {
  std::uint64_t joins_sent = 0;
  std::uint64_t joins_rx = 0;
  std::uint64_t forward_joins = 0;  ///< ForwardJoin hops relayed.
  std::uint64_t shuffles_sent = 0;
  std::uint64_t shuffles_rx = 0;
  std::uint64_t shuffle_replies = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_suppressed = 0;  ///< Peer traffic made probe moot.
  std::uint64_t probe_timeouts = 0;
  std::uint64_t peers_died = 0;      ///< Active peers declared dead.
  std::uint64_t repairs_started = 0;  ///< Passive promotions attempted.
  std::uint64_t repairs_done = 0;     ///< Promotions accepted.
  std::uint64_t neighbor_rejects = 0;
  std::uint64_t asymmetry_rejects = 0;  ///< Probes from non-peers turned away.
  std::uint64_t vacancy_fills = 0;      ///< Promotions sent to refill the view.
  std::uint64_t disconnects_rx = 0;
  std::uint64_t broadcasts = 0;   ///< Locally originated messages.
  std::uint64_t deliveries = 0;   ///< First-time local deliveries.
  std::uint64_t gossip_tx = 0;    ///< Eager payload pushes sent.
  std::uint64_t gossip_rx = 0;    ///< Payload pushes received.
  std::uint64_t duplicates = 0;   ///< Payloads already delivered.
  std::uint64_t ihave_tx = 0;     ///< IHAVE datagrams sent.
  std::uint64_t ihave_rx = 0;
  std::uint64_t grafts_tx = 0;    ///< Graft (IWANT) requests sent.
  std::uint64_t grafts_rx = 0;
  std::uint64_t prunes_tx = 0;
  std::uint64_t prunes_rx = 0;
  std::uint64_t restarts = 0;     ///< Host crashes observed (state wiped).
  std::uint64_t malformed = 0;    ///< Datagrams that failed to parse.
};

/// One overlay endpoint on a stack::Host. Construction binds the UDP
/// port; poll(now) — driven once per fabric tick round — drains the
/// socket and fires every protocol timer. The node self-registers a
/// Host post-restart hook so a kHostRestart churn episode wipes overlay
/// state exactly when it wipes TCP/ARP state.
class OverlayNode {
 public:
  OverlayNode(stack::Host& host, NodeId self, const OverlayConfig& config);
  ~OverlayNode();

  OverlayNode(const OverlayNode&) = delete;
  OverlayNode& operator=(const OverlayNode&) = delete;

  /// Begin (or re-begin) joining through `contact`. Retries with capped
  /// backoff until the active view is non-empty. The bootstrap node calls
  /// with kNoNode and simply waits to be joined.
  void join(NodeId contact, double now_sec);

  /// Broadcast `payload` from this node. Returns the assigned MsgId.
  MsgId broadcast(std::span<const std::uint8_t> payload, double now_sec);

  /// Id the next broadcast() will stamp. broadcast() delivers to self
  /// synchronously, so a harness that tracks ground truth must register
  /// the id before calling it.
  [[nodiscard]] MsgId next_broadcast_id() const noexcept {
    return MsgId{self_, seq_};
  }

  /// Drain the UDP socket and fire timers. Drive once per fabric tick.
  /// The node keeps one consolidated wakeup timer on the host's wheel
  /// armed at its earliest protocol deadline (join retry, probe, graft,
  /// shuffle, digest), so an idle poll — nothing received, nothing due,
  /// no IHAVEs queued — returns without scanning any protocol state.
  void poll(double now_sec);

  /// Quiesce switch: while muted the node still drains and processes its
  /// socket but sends nothing, so a harness can let in-flight traffic
  /// settle completely before auditing pools and ledgers.
  void set_muted(bool muted) noexcept { muted_ = muted; }

  /// Fires on first-time delivery of every broadcast (including our own).
  void set_deliver_hook(
      std::function<void(MsgId, std::span<const std::uint8_t>)> hook) {
    deliver_hook_ = std::move(hook);
  }

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] const OverlayStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t active_size() const noexcept {
    return peers_.size();
  }
  [[nodiscard]] std::size_t passive_size() const noexcept {
    return passive_.size();
  }
  [[nodiscard]] bool in_active(NodeId id) const noexcept {
    return find_peer(id) != nullptr;
  }
  [[nodiscard]] bool in_passive(NodeId id) const noexcept;
  [[nodiscard]] bool is_eager(NodeId id) const noexcept;
  [[nodiscard]] bool has_delivered(MsgId id) const noexcept {
    return messages_.count(id.key()) != 0;
  }
  /// Completed repair latencies (dead-declared -> replacement accepted),
  /// seconds; the harness pools them into the overlay.* histogram.
  [[nodiscard]] const std::vector<double>& repair_latencies() const noexcept {
    return repair_latencies_;
  }

  /// Snapshot the views for the ldlp::check auditors. Reuses the caller's
  /// vectors (clear + refill) so per-pass auditing does not allocate.
  void fill_view(check::OverlayView& out) const;

 private:
  struct Peer {  ///< One active-view neighbour.
    NodeId id = kNoNode;
    bool eager = true;       ///< Tree link (payloads) vs lazy (digests).
    double last_heard = 0.0;
    double probe_due = 0.0;   ///< Next scheduled liveness check.
    double probe_sent = 0.0;  ///< 0 = no probe outstanding.
    double probe_backoff = 0.0;
    std::uint32_t probe_nonce = 0;
    int probe_misses = 0;
  };
  struct Missing {  ///< IHAVE heard, payload not yet received.
    MsgId id;
    std::vector<NodeId> announcers;
    double graft_at = 0.0;  ///< Next graft attempt time.
    double backoff = 0.0;
    std::size_t next_announcer = 0;
  };

  // -- membership ---------------------------------------------------------
  [[nodiscard]] Peer* find_peer(NodeId id) noexcept;
  [[nodiscard]] const Peer* find_peer(NodeId id) const noexcept;
  void add_active(NodeId id, double now_sec);
  void remove_active(NodeId id, bool dead, double now_sec);
  void add_passive(NodeId id);
  void drop_passive(NodeId id);
  void start_repair(double now_sec, bool forced = false);
  void fire_membership_timers(double now_sec);
  [[nodiscard]] NodeId random_active(NodeId exclude_a = kNoNode,
                                     NodeId exclude_b = kNoNode) noexcept;

  // -- dissemination ------------------------------------------------------
  void deliver(MsgId id, std::vector<std::uint8_t> payload, double now_sec);
  void relay(MsgId id, std::uint16_t round, NodeId from, double now_sec);
  void remember(MsgId id);
  void queue_ihave(NodeId to, MsgId id);
  void flush_ihave(double now_sec);
  void send_digests(double now_sec);
  void fire_graft_timers(double now_sec);
  void note_missing(MsgId id, NodeId announcer, double now_sec);

  // -- wire ---------------------------------------------------------------
  void send(NodeId to, std::span<const std::uint8_t> bytes);
  void handle(const stack::Datagram& dgram, double now_sec);

  void on_restart();

  // -- wheel wakeup -------------------------------------------------------
  /// Earliest pending protocol deadline (+inf when fully idle) and its
  /// class: probe / join / graft retries are liveness (they drive repair),
  /// shuffle / digest cadence is not.
  [[nodiscard]] std::pair<double, time::TimerClass> next_deadline()
      const noexcept;
  /// Re-arm the consolidated wakeup timer at next_deadline(). The fire is
  /// a no-op — the fabric pass hook polls — but the armed deadline gates
  /// the poll early-exit and is what the timer oracles observe.
  void sync_wheel();

  stack::Host& host_;
  NodeId self_;
  OverlayConfig cfg_;
  Rng rng_;
  stack::SocketId sock_ = stack::kNoSocket;
  time::TimerId wake_ = time::kNoTimer;
  double next_due_ = 0.0;  ///< Cached next_deadline() (+inf when idle).
  /// Fabric-time deadline the wakeup was armed for (dedup key; the wheel
  /// itself holds the virtual-clock translation, see sync_wheel()).
  double wake_due_ = std::numeric_limits<double>::infinity();
  double clock_ref_ = 0.0;  ///< Fabric time of the last poll/join.

  std::vector<Peer> peers_;      ///< Active view (order = insertion).
  std::vector<NodeId> passive_;  ///< Passive view.
  NodeId contact_ = kNoNode;     ///< Join bootstrap target.
  bool joining_ = false;
  double join_at_ = 0.0;
  double join_backoff_ = 0.0;
  NodeId pending_neighbor_ = kNoNode;  ///< Outstanding promotion target.
  double neighbor_sent_ = 0.0;
  double repair_started_ = -1.0;  ///< Dead-declared time; <0 = no repair.
  double shuffle_at_ = 0.0;
  double digest_at_ = 0.0;

  std::uint32_t seq_ = 0;  ///< Next broadcast sequence number.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> messages_;
  std::deque<MsgId> recent_;  ///< Digest window, newest last.
  std::vector<Missing> missing_;
  std::vector<std::pair<NodeId, MsgId>> lazy_queue_;  ///< Pending IHAVEs.

  std::vector<double> repair_latencies_;
  std::function<void(MsgId, std::span<const std::uint8_t>)> deliver_hook_;
  OverlayStats stats_;
  bool muted_ = false;
};

/// Mirror a fleet of nodes into an obs registry as overlay.* counters
/// plus the overlay.repair_latency_sec histogram (the ISSUE's counter
/// contract: joins, shuffles, grafts, prunes, IHAVE/IWANT, repair
/// latency). Totals are summed across nodes; calling again re-sets.
void publish_overlay(obs::Registry& registry,
                     std::span<const OverlayNode* const> nodes,
                     std::string_view prefix = "overlay");

}  // namespace ldlp::overlay
