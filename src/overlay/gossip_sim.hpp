// One oracle-judged gossip run on a fat-tree fabric, shared verbatim by
// the chaos soak (`--scenario=gossip`), the perf gate
// (`gate_gossip_soak`) and the unit tests — one implementation, three
// judges, so a soak failure reproduces exactly under the debugger.
//
// Timeline of a run:
//   1. staggered joins — every node joins through its bootstrap contact
//      across `join_window_sec`, while the schedule's fault plan is
//      already live (joins must survive adversity too);
//   2. broadcast storm — `storm_broadcasts` messages from seed-chosen
//      *stable* origins (never a restart victim), paced to span the
//      whole fault horizon;
//   3. heal + converge — after the horizon, periodic beacon broadcasts
//      from node 0 keep the digest window fresh (orphaned subtrees
//      graft back in) until the OverlayConvergenceOracle reports the
//      views held still and the BroadcastDeliveryOracle reports every
//      stable member delivered everything;
//   4. judgement — ViewAuditor::final_audit (link symmetry),
//      OverlayConvergenceOracle::finalize (single connected eager tree),
//      BroadcastDeliveryOracle::finalize (exactly-once completeness),
//      plus the fabric's own conservation ledger and the per-host
//      invariant auditors.
//
// Everything is a deterministic function of the check::Schedule, so
// ldlp.schedule.v1 replay and the ddmin shrinker work on gossip seeds
// unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "overlay/overlay.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::overlay {

struct GossipSimConfig {
  std::size_t racks = 8;
  std::size_t hosts_per_rack = 8;
  std::size_t spines = 2;
  double host_tick_sec = 5e-3;
  /// Idle-host tick coalescing (FabricConfig::idle_skip_cap): gossip
  /// fleets are mostly idle between bursts, and 64 hosts need the
  /// headroom to fit the soak budget. The skip is wheel-driven — a host
  /// only coalesces rounds its timer wheel proves are dead time.
  std::uint32_t idle_skip_cap = 16;
  double join_window_sec = 0.6;   ///< Joins staggered across this window.
  double fault_horizon_sec = 2.0; ///< Matches the schedule's plan horizon.
  std::size_t storm_broadcasts = 40;
  std::size_t payload_bytes = 32;
  OverlayConfig overlay{};
  /// Per-host wheel configuration, applied to every host before any
  /// timer arms. The `clocks` scenario's mutation knob lives here:
  /// shed_guard=false re-introduces stale-timer shedding, the bug class
  /// the DeadlineOracle exists to catch.
  time::WheelConfig wheel{};
  /// Attach the timer oracles: a check::TimerAuditor per host (monotone
  /// clocks, rtx-armed-iff-in-flight wheel-side, no leaked timers after
  /// teardown) and one recover::DeadlineOracle over every wheel (armed
  /// timers fire or cancel; shedding never eats a liveness timer). The
  /// `clocks` scenario turns this on; the plain gossip soak leaves the
  /// wheels unobserved.
  bool timer_oracles = false;
  /// Abort predicate polled inside the drain loops (the soak wires its
  /// per-seed wall-clock deadline here). Null = never.
  std::function<bool()> deadline;
};

struct GossipSimResult {
  bool pass = true;
  std::string why;  ///< First failure (empty when pass).
  std::vector<std::string> violations;

  // Aggregated protocol evidence (summed over nodes).
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t gossip_rx = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t grafts = 0;
  std::uint64_t prunes = 0;
  std::uint64_t repairs_done = 0;
  std::uint64_t probes_suppressed = 0;
  std::uint64_t suppressed_ticks = 0;

  // Fleet-summed timer-wheel evidence (always collected; judged only
  // when GossipSimConfig::timer_oracles is set).
  std::uint64_t timer_arms = 0;
  std::uint64_t timer_fires = 0;
  std::uint64_t timer_cancels = 0;
  std::uint64_t timer_spurious = 0;  ///< Storm-induced early fires.
  std::uint64_t timer_shed = 0;      ///< Dropped timers + excess storm demand.
  /// Payload receptions per useful delivery — 1.0 is a perfect tree;
  /// the gap above 1.0 is relay redundancy (duplicates PlumTree prunes).
  double relay_redundancy = 0.0;
  /// Fraction of (message, stable member) pairs delivered; 1.0 required.
  double delivery_completeness = 0.0;
  double repair_p99_sec = 0.0;  ///< 0 when no repair completed.
  double sim_time_sec = 0.0;

  void fail(const std::string& reason) {
    pass = false;
    if (why.empty()) why = reason;
  }
};

/// Run one gossip scenario for `schedule` (fault plans parsed exactly as
/// the fleet scenario does: spec "fabric" = the topology-scoped plan,
/// "h<i>" = per-host churn injectors).
GossipSimResult run_gossip_sim(const check::Schedule& schedule,
                               const GossipSimConfig& config = {});

}  // namespace ldlp::overlay
