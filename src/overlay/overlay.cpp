#include "overlay/overlay.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/byteorder.hpp"

namespace ldlp::overlay {
namespace {

// Wire format: every overlay datagram is  u8 type | be32 sender | body.
// Small enough that no message ever fragments (MTU 1500, worst case is a
// gossip push at ~19 bytes of header plus the payload).
enum MsgType : std::uint8_t {
  kJoin = 1,          // (no body) sender wants in via this contact
  kForwardJoin = 2,   // be32 joiner | u8 ttl — HyParView random walk
  kNeighbor = 3,      // u8 priority — promotion request (repair path)
  kNeighborReply = 4, // u8 accept — also the Join/ForwardJoin accept
  kDisconnect = 5,    // (no body) sender evicted us from its active view
  kShuffle = 6,       // be32 origin | u8 ttl | u8 n | n * be32 ids
  kShuffleReply = 7,  // u8 n | n * be32 ids — direct to shuffle origin
  kProbe = 8,         // be32 nonce
  kProbeAck = 9,      // be32 nonce
  kGossip = 10,       // be32 origin | be32 seq | be16 round | be16 len | bytes
  kPrune = 11,        // (no body) demote our link to lazy
  kGraft = 12,        // be32 origin | be32 seq — promote link, send payload
  kIhave = 13,        // u8 n | n * (be32 origin, be32 seq)
};

constexpr std::size_t kMaxDatagram = 1400;

}  // namespace

OverlayNode::OverlayNode(stack::Host& host, NodeId self,
                         const OverlayConfig& config)
    : host_(host), self_(self), cfg_(config) {
  // Per-node stream: a deterministic function of (run seed, identity), so
  // replaying a schedule replays every jitter draw and shuffle sample.
  std::uint64_t mix = cfg_.seed ^ (static_cast<std::uint64_t>(self_) << 17);
  rng_.reseed(splitmix64(mix));
  sock_ = host_.sockets().create(stack::SocketKind::kDatagram);
  const bool bound = host_.udp().bind(cfg_.port, sock_);
  (void)bound;  // One overlay endpoint per host; the port is ours.
  // De-synchronize the periodic timers across the fleet from the start.
  shuffle_at_ = cfg_.membership.shuffle_interval_sec * rng_.uniform(0.5, 1.5);
  digest_at_ = cfg_.plumtree.digest_interval_sec * rng_.uniform(0.5, 1.5);
  host_.set_restart_hook([this] { on_restart(); });
  sync_wheel();
}

OverlayNode::~OverlayNode() {
  host_.set_restart_hook(nullptr);
  if (wake_ != time::kNoTimer) host_.wheel().cancel(wake_);
}

std::pair<double, time::TimerClass> OverlayNode::next_deadline()
    const noexcept {
  double due = std::numeric_limits<double>::infinity();
  time::TimerClass cls = time::TimerClass::kCadence;
  const auto consider = [&](double d, time::TimerClass c) {
    if (d < due) {
      due = d;
      cls = c;
    }
  };
  if (joining_) consider(join_at_, time::TimerClass::kLiveness);
  if (pending_neighbor_ != kNoNode)
    consider(neighbor_sent_ + 2.0 * cfg_.membership.probe_timeout_sec,
             time::TimerClass::kLiveness);
  for (const Peer& p : peers_) {
    // Mirrors fire_membership_timers: an outstanding probe is waiting on
    // its backoff, otherwise the next scheduled check is probe_due.
    const double d =
        p.probe_sent > 0.0 ? p.probe_sent + p.probe_backoff : p.probe_due;
    consider(d, time::TimerClass::kLiveness);
  }
  for (const Missing& m : missing_)
    consider(m.graft_at, time::TimerClass::kLiveness);
  consider(shuffle_at_, time::TimerClass::kCadence);
  consider(digest_at_, time::TimerClass::kCadence);
  return {due, cls};
}

void OverlayNode::sync_wheel() {
  const auto [due, cls] = next_deadline();
  next_due_ = due;
  time::TimerWheel& wheel = host_.wheel();
  if (!std::isfinite(due)) {
    if (wake_ != time::kNoTimer) {
      wheel.cancel(wake_);
      wake_ = time::kNoTimer;
      wake_due_ = due;
    }
    return;
  }
  if (wake_ != time::kNoTimer && wake_due_ == due) return;
  if (wake_ != time::kNoTimer) wheel.cancel(wake_);
  // Deadlines are decided in fabric time, but a host can only set its
  // alarm "this far from now" on its own (possibly skewed, drifting or
  // stalled) clock — so the wheel holds the virtual-clock translation.
  // Under kClockStall the translated deadline is stranded where the
  // wheel froze, and the snap ending the stall fires it late: exactly
  // the stall-recovery burst the shed guard must survive (and the
  // `clocks` mutation check exploits).
  const double left = due - clock_ref_;
  wake_ = wheel.arm(wheel.now() + (left > 0.0 ? left : 0.0), cls, [] {});
  wake_due_ = due;
}

// ---------------------------------------------------------------------------
// Membership: views

OverlayNode::Peer* OverlayNode::find_peer(NodeId id) noexcept {
  for (Peer& p : peers_)
    if (p.id == id) return &p;
  return nullptr;
}

const OverlayNode::Peer* OverlayNode::find_peer(NodeId id) const noexcept {
  for (const Peer& p : peers_)
    if (p.id == id) return &p;
  return nullptr;
}

bool OverlayNode::in_passive(NodeId id) const noexcept {
  return std::find(passive_.begin(), passive_.end(), id) != passive_.end();
}

bool OverlayNode::is_eager(NodeId id) const noexcept {
  const Peer* p = find_peer(id);
  return p != nullptr && p->eager;
}

NodeId OverlayNode::random_active(NodeId exclude_a,
                                  NodeId exclude_b) noexcept {
  // Reservoir-of-one over the eligible peers: one rng draw per candidate,
  // uniform, no allocation.
  NodeId pick = kNoNode;
  std::uint64_t seen = 0;
  for (const Peer& p : peers_) {
    if (p.id == exclude_a || p.id == exclude_b) continue;
    ++seen;
    if (rng_.bounded(seen) == 0) pick = p.id;
  }
  return pick;
}

void OverlayNode::add_passive(NodeId id) {
  if (id == self_ || id == kNoNode) return;
  if (find_peer(id) != nullptr || in_passive(id)) return;
  if (passive_.size() >= cfg_.membership.passive_max && !passive_.empty())
    passive_[rng_.bounded(passive_.size())] = id;  // evict random in place
  else
    passive_.push_back(id);
}

void OverlayNode::drop_passive(NodeId id) {
  const auto it = std::find(passive_.begin(), passive_.end(), id);
  if (it != passive_.end()) passive_.erase(it);
}

void OverlayNode::add_active(NodeId id, double now_sec) {
  if (id == self_ || id == kNoNode || find_peer(id) != nullptr) return;
  drop_passive(id);
  if (peers_.size() >= cfg_.membership.active_max) {
    // HyParView eviction: a random current member is demoted to passive
    // and told so, keeping the degree bound exact at all times.
    const std::size_t victim = rng_.bounded(peers_.size());
    const NodeId evicted = peers_[victim].id;
    peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(victim));
    std::array<std::uint8_t, 5> msg{};
    ByteWriter w(msg);
    w.u8(kDisconnect);
    w.be32(self_);
    send(evicted, msg);
    add_passive(evicted);
  }
  Peer p;
  p.id = id;
  p.eager = true;  // new links start on the tree; prune demotes them
  p.last_heard = now_sec;
  p.probe_due = now_sec + cfg_.membership.probe_idle_sec;
  peers_.push_back(p);
  joining_ = false;
  if (id == pending_neighbor_) {
    pending_neighbor_ = kNoNode;
    if (repair_started_ >= 0.0) {
      repair_latencies_.push_back(now_sec - repair_started_);
      repair_started_ = -1.0;
      ++stats_.repairs_done;
    }
  }
}

void OverlayNode::remove_active(NodeId id, bool dead, double now_sec) {
  (void)now_sec;
  const auto it = std::find_if(peers_.begin(), peers_.end(),
                               [&](const Peer& p) { return p.id == id; });
  if (it == peers_.end()) return;
  peers_.erase(it);
  if (dead) {
    ++stats_.peers_died;
    drop_passive(id);  // a peer we just declared dead is no repair donor
  } else {
    add_passive(id);
  }
}

void OverlayNode::start_repair(double now_sec, bool forced) {
  // The mutation knob gates *failure-driven* repair — probe-death
  // promotion, restart rejoin, vacancy fill. Reacting to an explicit
  // Disconnect (an eviction is protocol, not churn) stays on even when
  // the knob is reverted, so a calm fleet still bootstraps and the churn
  // oracles blame exactly the repair path.
  if (!cfg_.membership.enable_repair && !forced) return;
  if (pending_neighbor_ != kNoNode) return;  // one promotion in flight
  if (repair_started_ < 0.0) {
    repair_started_ = now_sec;
    ++stats_.repairs_started;
  }
  if (passive_.empty()) {
    // Nothing to promote: fall back to a full re-join through the
    // bootstrap contact (the restart-recovery path shares this).
    if (contact_ != kNoNode && peers_.empty()) {
      joining_ = true;
      join_at_ = now_sec;
      join_backoff_ = cfg_.membership.join_retry_sec;
    }
    return;
  }
  const std::size_t i = rng_.bounded(passive_.size());
  pending_neighbor_ = passive_[i];
  // Pull the candidate out of passive while the promotion is in flight:
  // if it is dead it must not be re-drawn forever; if it rejects, it is
  // re-added on reply.
  passive_.erase(passive_.begin() + static_cast<std::ptrdiff_t>(i));
  neighbor_sent_ = now_sec;
  std::array<std::uint8_t, 6> msg{};
  ByteWriter w(msg);
  w.u8(kNeighbor);
  w.be32(self_);
  w.u8(peers_.empty() ? 1 : 0);  // high priority: we are isolated
  send(pending_neighbor_, msg);
}

// ---------------------------------------------------------------------------
// Membership: API + timers

void OverlayNode::join(NodeId contact, double now_sec) {
  contact_ = contact;
  if (contact == kNoNode) return;  // bootstrap node just waits to be joined
  joining_ = true;
  join_at_ = now_sec;
  join_backoff_ = cfg_.membership.join_retry_sec;
  clock_ref_ = now_sec;
  sync_wheel();  // join_at_ may be earlier than the armed wakeup
}

void OverlayNode::fire_membership_timers(double now_sec) {
  const MembershipConfig& m = cfg_.membership;

  // Join retry loop (capped exponential backoff until the view forms).
  if (joining_ && now_sec >= join_at_) {
    if (!peers_.empty()) {
      joining_ = false;
    } else {
      std::array<std::uint8_t, 5> msg{};
      ByteWriter w(msg);
      w.u8(kJoin);
      w.be32(self_);
      send(contact_, msg);
      ++stats_.joins_sent;
      join_at_ = now_sec + join_backoff_;
      join_backoff_ = std::min(join_backoff_ * 2.0, m.join_backoff_max_sec);
    }
  }

  // Outstanding promotion that never answered: the candidate is gone
  // (we already removed it from passive); draw another.
  if (pending_neighbor_ != kNoNode &&
      now_sec - neighbor_sent_ > 2.0 * m.probe_timeout_sec) {
    pending_neighbor_ = kNoNode;
    start_repair(now_sec);
  }

  // Failure detector. Probes are lazy: a peer we heard from recently is
  // alive by evidence and its probe is deferred (counted — this is the
  // suppressed-timer-work the fleet-scale satellite asks to observe).
  NodeId died = kNoNode;
  for (Peer& p : peers_) {
    if (p.probe_sent > 0.0) {
      if (now_sec - p.probe_sent < p.probe_backoff) continue;
      ++p.probe_misses;
      ++stats_.probe_timeouts;
      if (p.probe_misses >= m.probe_failures) {
        died = p.id;  // at most one death per pass keeps this O(n)
        continue;
      }
      p.probe_nonce = static_cast<std::uint32_t>(rng_());
      p.probe_sent = now_sec;
      p.probe_backoff =
          std::min(p.probe_backoff * 2.0, m.probe_backoff_max_sec);
      std::array<std::uint8_t, 9> msg{};
      ByteWriter w(msg);
      w.u8(kProbe);
      w.be32(self_);
      w.be32(p.probe_nonce);
      send(p.id, msg);
      ++stats_.probes_sent;
    } else if (now_sec >= p.probe_due) {
      if (now_sec - p.last_heard < m.probe_idle_sec) {
        ++stats_.probes_suppressed;
        p.probe_due = p.last_heard + m.probe_idle_sec;
      } else {
        p.probe_nonce = static_cast<std::uint32_t>(rng_());
        p.probe_sent = now_sec;
        p.probe_backoff = m.probe_timeout_sec;
        std::array<std::uint8_t, 9> msg{};
        ByteWriter w(msg);
        w.u8(kProbe);
        w.be32(self_);
        w.be32(p.probe_nonce);
        send(p.id, msg);
        ++stats_.probes_sent;
      }
    }
  }
  if (died != kNoNode) {
    remove_active(died, /*dead=*/true, now_sec);
    start_repair(now_sec);
  }

  // Periodic shuffle: one random walk carrying a sample of our views.
  if (now_sec >= shuffle_at_) {
    shuffle_at_ =
        now_sec + m.shuffle_interval_sec * rng_.uniform(0.75, 1.25);
    const NodeId target = random_active();
    if (target != kNoNode) {
      std::array<std::uint8_t, kMaxDatagram> msg{};
      ByteWriter w(msg);
      w.u8(kShuffle);
      w.be32(self_);
      w.be32(self_);       // walk origin
      w.u8(m.prwl);        // walk length
      std::uint8_t n = 0;
      std::array<std::uint32_t, 16> sample{};
      for (const Peer& p : peers_) {
        if (n >= m.shuffle_active || n >= sample.size()) break;
        if (p.id == target) continue;
        sample[n++] = p.id;
      }
      std::size_t picked = 0;
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        if (picked >= m.shuffle_passive || n >= sample.size()) break;
        // Uniform sample without replacement, single pass.
        const std::size_t left = passive_.size() - i;
        if (rng_.bounded(left) < m.shuffle_passive - picked) {
          sample[n++] = passive_[i];
          ++picked;
        }
      }
      w.u8(n);
      for (std::uint8_t i = 0; i < n; ++i) w.be32(sample[i]);
      send(target, std::span(msg).first(w.position()));
      ++stats_.shuffles_sent;
    }

    // Vacancy fill. HyParView keeps the active view full, and that is a
    // connectivity property, not an optimization: a small component that
    // splits off is internally healthy — no death, no disconnect — so
    // only under-full views ever pull it back. Riding the shuffle cadence
    // keeps promotion attempts paced (one candidate in flight, rejects
    // just return the candidate to passive until the next tick).
    if (m.enable_repair && peers_.size() < m.active_max &&
        pending_neighbor_ == kNoNode && !passive_.empty()) {
      const std::size_t i = rng_.bounded(passive_.size());
      pending_neighbor_ = passive_[i];
      passive_.erase(passive_.begin() + static_cast<std::ptrdiff_t>(i));
      neighbor_sent_ = now_sec;
      std::array<std::uint8_t, 6> nb{};
      ByteWriter w2(nb);
      w2.u8(kNeighbor);
      w2.be32(self_);
      w2.u8(peers_.empty() ? 1 : 0);
      send(pending_neighbor_, nb);
      ++stats_.vacancy_fills;
    }
  }
}

// ---------------------------------------------------------------------------
// Dissemination

void OverlayNode::remember(MsgId id) {
  recent_.push_back(id);
  while (recent_.size() > cfg_.plumtree.digest_window) recent_.pop_front();
}

void OverlayNode::queue_ihave(NodeId to, MsgId id) {
  lazy_queue_.emplace_back(to, id);
}

void OverlayNode::flush_ihave(double now_sec) {
  (void)now_sec;
  while (!lazy_queue_.empty()) {
    const NodeId to = lazy_queue_.front().first;
    std::array<std::uint8_t, kMaxDatagram> msg{};
    ByteWriter w(msg);
    w.u8(kIhave);
    w.be32(self_);
    const std::size_t count_pos = w.position();
    w.u8(0);
    std::uint8_t n = 0;
    // Collect this destination's ids (deduplicated) and erase as we go.
    std::vector<MsgId> batch;
    for (std::size_t i = 0; i < lazy_queue_.size();) {
      if (lazy_queue_[i].first != to ||
          n >= cfg_.plumtree.ihave_batch_max) {
        ++i;
        continue;
      }
      const MsgId id = lazy_queue_[i].second;
      lazy_queue_.erase(lazy_queue_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      if (std::find(batch.begin(), batch.end(), id) != batch.end()) continue;
      batch.push_back(id);
      w.be32(id.origin);
      w.be32(id.seq);
      ++n;
    }
    msg[count_pos] = n;
    if (n > 0) {
      send(to, std::span(msg).first(w.position()));
      ++stats_.ihave_tx;
    }
  }
}

void OverlayNode::send_digests(double now_sec) {
  if (now_sec < digest_at_) return;
  digest_at_ = now_sec +
               cfg_.plumtree.digest_interval_sec * rng_.uniform(0.75, 1.25);
  if (recent_.empty() || peers_.empty()) return;
  // Anti-entropy: every active peer (eager links lose pushes to the wire
  // too) hears the recent window; anyone missing anything grafts.
  for (const Peer& p : peers_)
    for (const MsgId id : recent_) queue_ihave(p.id, id);
}

void OverlayNode::note_missing(MsgId id, NodeId announcer, double now_sec) {
  for (Missing& m : missing_) {
    if (m.id == id) {
      if (std::find(m.announcers.begin(), m.announcers.end(), announcer) ==
          m.announcers.end())
        m.announcers.push_back(announcer);
      return;
    }
  }
  Missing m;
  m.id = id;
  m.announcers.push_back(announcer);
  m.backoff = cfg_.plumtree.graft_timeout_sec;
  m.graft_at = now_sec + m.backoff;
  missing_.push_back(std::move(m));
}

void OverlayNode::fire_graft_timers(double now_sec) {
  for (Missing& m : missing_) {
    if (now_sec < m.graft_at) continue;
    const NodeId announcer =
        m.announcers[m.next_announcer % m.announcers.size()];
    ++m.next_announcer;  // rotate announcers across retries
    m.backoff = std::min(m.backoff * 2.0, cfg_.plumtree.graft_backoff_max_sec);
    m.graft_at = now_sec + m.backoff;
    // Graft-on-miss: the announcing link becomes a tree link on our side
    // (the peer mirrors it on receipt) and we pull the payload.
    if (Peer* p = find_peer(announcer)) p->eager = true;
    std::array<std::uint8_t, 13> msg{};
    ByteWriter w(msg);
    w.u8(kGraft);
    w.be32(self_);
    w.be32(m.id.origin);
    w.be32(m.id.seq);
    send(announcer, msg);
    ++stats_.grafts_tx;
  }
}

void OverlayNode::relay(MsgId id, std::uint16_t round, NodeId from,
                        double now_sec) {
  (void)now_sec;
  const auto it = messages_.find(id.key());
  if (it == messages_.end()) return;
  const std::vector<std::uint8_t>& payload = it->second;
  std::vector<std::uint8_t> msg(17 + payload.size());
  ByteWriter w(msg);
  w.u8(kGossip);
  w.be32(self_);
  w.be32(id.origin);
  w.be32(id.seq);
  w.be16(round);
  w.be16(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  for (const Peer& p : peers_) {
    if (p.id == from) continue;
    if (p.eager) {
      send(p.id, msg);
      ++stats_.gossip_tx;
    } else {
      queue_ihave(p.id, id);
    }
  }
}

void OverlayNode::deliver(MsgId id, std::vector<std::uint8_t> payload,
                          double now_sec) {
  (void)now_sec;
  ++stats_.deliveries;
  auto [it, fresh] = messages_.try_emplace(id.key(), std::move(payload));
  (void)it;
  (void)fresh;
  remember(id);
  // Clear any outstanding graft chase for this id.
  for (std::size_t i = 0; i < missing_.size(); ++i) {
    if (missing_[i].id == id) {
      missing_.erase(missing_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (deliver_hook_) deliver_hook_(id, it->second);
}

MsgId OverlayNode::broadcast(std::span<const std::uint8_t> payload,
                             double now_sec) {
  // seq_ deliberately survives restarts (see on_restart): an origin must
  // never reuse a (origin, seq) id or exactly-once becomes unverifiable.
  const MsgId id{self_, seq_++};
  ++stats_.broadcasts;
  deliver(id, std::vector<std::uint8_t>(payload.begin(), payload.end()),
          now_sec);
  relay(id, 0, kNoNode, now_sec);
  return id;
}

// ---------------------------------------------------------------------------
// Wire

void OverlayNode::send(NodeId to, std::span<const std::uint8_t> bytes) {
  if (muted_) return;  // quiescing: drain-only, never feed the fabric
  host_.udp().send(cfg_.port, to, cfg_.port, bytes);
}

void OverlayNode::handle(const stack::Datagram& dgram, double now_sec) {
  const MembershipConfig& m = cfg_.membership;
  ByteReader r(dgram.payload);
  const std::uint8_t type = r.u8();
  const NodeId sender = r.be32();
  if (!r.ok() || sender == self_ || sender == kNoNode) {
    ++stats_.malformed;
    return;
  }

  // Any datagram is liveness evidence: the failure detector stands down.
  if (Peer* p = find_peer(sender)) {
    p->last_heard = now_sec;
    p->probe_sent = 0.0;
    p->probe_misses = 0;
    p->probe_due = now_sec + m.probe_idle_sec;
  }

  switch (type) {
    case kJoin: {
      ++stats_.joins_rx;
      add_active(sender, now_sec);
      std::array<std::uint8_t, 6> reply{};
      ByteWriter w(reply);
      w.u8(kNeighborReply);
      w.be32(self_);
      w.u8(1);
      send(sender, reply);
      // Propagate the joiner through the overlay on random walks.
      for (const Peer& p : peers_) {
        if (p.id == sender) continue;
        std::array<std::uint8_t, 10> fj{};
        ByteWriter fw(fj);
        fw.u8(kForwardJoin);
        fw.be32(self_);
        fw.be32(sender);
        fw.u8(m.arwl);
        send(p.id, fj);
      }
      break;
    }
    case kForwardJoin: {
      const NodeId joiner = r.be32();
      const std::uint8_t ttl = r.u8();
      if (!r.ok() || joiner == kNoNode) {
        ++stats_.malformed;
        break;
      }
      ++stats_.forward_joins;
      if (joiner == self_) break;  // walk looped back to the joiner
      if (ttl == 0 || peers_.size() <= 1) {
        // Walk ends here: take the joiner in and tell it so.
        add_active(joiner, now_sec);
        std::array<std::uint8_t, 6> reply{};
        ByteWriter w(reply);
        w.u8(kNeighborReply);
        w.be32(self_);
        w.u8(1);
        send(joiner, reply);
        break;
      }
      if (ttl == m.prwl) add_passive(joiner);
      const NodeId next = random_active(sender, joiner);
      if (next == kNoNode) {
        add_active(joiner, now_sec);
        std::array<std::uint8_t, 6> reply{};
        ByteWriter w(reply);
        w.u8(kNeighborReply);
        w.be32(self_);
        w.u8(1);
        send(joiner, reply);
        break;
      }
      std::array<std::uint8_t, 10> fj{};
      ByteWriter w(fj);
      w.u8(kForwardJoin);
      w.be32(self_);
      w.be32(joiner);
      w.u8(static_cast<std::uint8_t>(ttl - 1));
      send(next, fj);
      break;
    }
    case kNeighbor: {
      const std::uint8_t priority = r.u8();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      const bool accept =
          priority != 0 || peers_.size() < m.active_max ||
          find_peer(sender) != nullptr;
      if (accept) add_active(sender, now_sec);
      std::array<std::uint8_t, 6> reply{};
      ByteWriter w(reply);
      w.u8(kNeighborReply);
      w.be32(self_);
      w.u8(accept ? 1 : 0);
      send(sender, reply);
      break;
    }
    case kNeighborReply: {
      const std::uint8_t accept = r.u8();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      if (accept != 0) {
        add_active(sender, now_sec);
      } else {
        ++stats_.neighbor_rejects;
        if (sender == pending_neighbor_) {
          pending_neighbor_ = kNoNode;
          add_passive(sender);  // alive but full — still a candidate later
          // Isolation is not acceptable; a mere vacancy is. Retry only
          // while we have no links at all (forced: an explicit reject
          // while isolated is a message-driven reconnect, not the
          // failure-driven repair the mutation knob gates).
          if (peers_.empty())
            start_repair(now_sec, /*forced=*/true);
          else
            repair_started_ = -1.0;
        }
      }
      break;
    }
    case kDisconnect: {
      ++stats_.disconnects_rx;
      remove_active(sender, /*dead=*/false, now_sec);
      if (peers_.empty()) start_repair(now_sec, /*forced=*/true);
      break;
    }
    case kShuffle: {
      const NodeId origin = r.be32();
      const std::uint8_t ttl = r.u8();
      const std::uint8_t n = r.u8();
      std::array<std::uint32_t, 16> ids{};
      for (std::uint8_t i = 0; i < n && i < ids.size(); ++i)
        ids[i] = r.be32();
      if (!r.ok() || origin == kNoNode) {
        ++stats_.malformed;
        break;
      }
      ++stats_.shuffles_rx;
      const NodeId next =
          ttl > 0 && peers_.size() > 1 ? random_active(sender, origin)
                                       : kNoNode;
      if (next != kNoNode && origin != self_) {
        std::array<std::uint8_t, kMaxDatagram> fwd{};
        ByteWriter w(fwd);
        w.u8(kShuffle);
        w.be32(self_);
        w.be32(origin);
        w.u8(static_cast<std::uint8_t>(ttl - 1));
        w.u8(n);
        for (std::uint8_t i = 0; i < n && i < ids.size(); ++i)
          w.be32(ids[i]);
        send(next, std::span(fwd).first(w.position()));
        break;
      }
      // Walk terminates here: merge the sample, reply with our own.
      if (origin == self_) break;
      add_passive(origin);
      for (std::uint8_t i = 0; i < n && i < ids.size(); ++i)
        add_passive(ids[i]);
      std::array<std::uint8_t, kMaxDatagram> reply{};
      ByteWriter w(reply);
      w.u8(kShuffleReply);
      w.be32(self_);
      const std::size_t count_pos = w.position();
      w.u8(0);
      std::uint8_t rn = 0;
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        if (rn >= m.shuffle_passive + m.shuffle_active) break;
        if (passive_[i] == origin) continue;
        w.be32(passive_[i]);
        ++rn;
      }
      reply[count_pos] = rn;
      send(origin, std::span(reply).first(w.position()));
      ++stats_.shuffle_replies;
      break;
    }
    case kShuffleReply: {
      const std::uint8_t n = r.u8();
      std::array<std::uint32_t, 16> ids{};
      for (std::uint8_t i = 0; i < n && i < ids.size(); ++i)
        ids[i] = r.be32();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      for (std::uint8_t i = 0; i < n && i < ids.size(); ++i)
        add_passive(ids[i]);
      break;
    }
    case kProbe: {
      const std::uint32_t nonce = r.be32();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      if (find_peer(sender) == nullptr) {
        // Asymmetric link: the prober holds us active but we dropped it
        // (an eviction whose Disconnect was lost, or we restarted and
        // forgot it). Acking anyway would make the asymmetry stable —
        // every ack resets its failure detector — and silently adopting
        // the prober would re-admit it outside the membership protocol.
        // Symmetrize down: tell it to let go, withhold the ack, and let
        // vacancy fill rebuild the view through passive promotion.
        std::array<std::uint8_t, 5> bye{};
        ByteWriter w(bye);
        w.u8(kDisconnect);
        w.be32(self_);
        send(sender, bye);
        ++stats_.asymmetry_rejects;
        break;
      }
      std::array<std::uint8_t, 9> reply{};
      ByteWriter w(reply);
      w.u8(kProbeAck);
      w.be32(self_);
      w.be32(nonce);
      send(sender, reply);
      break;
    }
    case kProbeAck:
      break;  // the last-heard update above is the whole effect
    case kGossip: {
      MsgId id;
      id.origin = r.be32();
      id.seq = r.be32();
      const std::uint16_t round = r.be16();
      const std::uint16_t len = r.be16();
      const auto payload = r.bytes(len);
      if (!r.ok() || id.origin == kNoNode) {
        ++stats_.malformed;
        break;
      }
      ++stats_.gossip_rx;
      if (messages_.count(id.key()) != 0) {
        // Prune-on-duplicate: this link is redundant for the tree.
        ++stats_.duplicates;
        if (Peer* p = find_peer(sender); p != nullptr && p->eager) {
          p->eager = false;
          std::array<std::uint8_t, 5> prune{};
          ByteWriter w(prune);
          w.u8(kPrune);
          w.be32(self_);
          send(sender, prune);
          ++stats_.prunes_tx;
        }
        break;
      }
      if (Peer* p = find_peer(sender)) p->eager = true;  // tree parent
      deliver(id, std::vector<std::uint8_t>(payload.begin(), payload.end()),
              now_sec);
      relay(id, static_cast<std::uint16_t>(round + 1), sender, now_sec);
      break;
    }
    case kPrune: {
      ++stats_.prunes_rx;
      if (Peer* p = find_peer(sender)) p->eager = false;
      break;
    }
    case kGraft: {
      MsgId id;
      id.origin = r.be32();
      id.seq = r.be32();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      ++stats_.grafts_rx;
      if (Peer* p = find_peer(sender)) p->eager = true;  // mirror the graft
      const auto it = messages_.find(id.key());
      if (it != messages_.end()) {
        const std::vector<std::uint8_t>& payload = it->second;
        std::vector<std::uint8_t> msg(17 + payload.size());
        ByteWriter w(msg);
        w.u8(kGossip);
        w.be32(self_);
        w.be32(id.origin);
        w.be32(id.seq);
        w.be16(0);
        w.be16(static_cast<std::uint16_t>(payload.size()));
        w.bytes(payload);
        send(sender, msg);
        ++stats_.gossip_tx;
      }
      break;
    }
    case kIhave: {
      const std::uint8_t n = r.u8();
      if (!r.ok()) {
        ++stats_.malformed;
        break;
      }
      ++stats_.ihave_rx;
      for (std::uint8_t i = 0; i < n; ++i) {
        MsgId id;
        id.origin = r.be32();
        id.seq = r.be32();
        if (!r.ok()) {
          ++stats_.malformed;
          break;
        }
        if (messages_.count(id.key()) != 0) continue;
        note_missing(id, sender, now_sec);
      }
      break;
    }
    default:
      ++stats_.malformed;
      break;
  }
}

void OverlayNode::poll(double now_sec) {
  // Idle fast path: nothing received, nothing due, nothing queued. A poll
  // the legacy scan would have treated as a pure no-op (no sends, no rng
  // draws, no state changes) returns here, so behavior — and every rng
  // stream — is bit-identical with the scanning version.
  if (now_sec < next_due_ && lazy_queue_.empty() &&
      host_.sockets().pending_datagrams(sock_) == 0)
    return;
  clock_ref_ = now_sec;
  while (auto dgram = host_.sockets().read_datagram(sock_))
    handle(*dgram, now_sec);
  fire_membership_timers(now_sec);
  fire_graft_timers(now_sec);
  send_digests(now_sec);
  flush_ihave(now_sec);
  sync_wheel();
}

// ---------------------------------------------------------------------------
// Crash recovery + introspection

void OverlayNode::on_restart() {
  // Everything protocol lives in RAM and died with the old incarnation.
  // seq_ is the one exception — modelled as read back from stable
  // storage, because reusing a (origin, seq) id would break exactly-once
  // for every peer that remembers the first incarnation's broadcast.
  ++stats_.restarts;
  peers_.clear();
  passive_.clear();
  messages_.clear();
  recent_.clear();
  missing_.clear();
  lazy_queue_.clear();
  pending_neighbor_ = kNoNode;
  repair_started_ = -1.0;
  joining_ = false;
  const double now = host_.now();
  shuffle_at_ =
      now + cfg_.membership.shuffle_interval_sec * rng_.uniform(0.5, 1.5);
  digest_at_ =
      now + cfg_.plumtree.digest_interval_sec * rng_.uniform(0.5, 1.5);
  if (cfg_.membership.enable_repair && contact_ != kNoNode) {
    // Reborn: re-enter through the bootstrap contact, fresh backoff.
    joining_ = true;
    join_at_ = now + cfg_.membership.join_retry_sec * rng_.uniform(0.1, 0.5);
    join_backoff_ = cfg_.membership.join_retry_sec;
  }
  sync_wheel();  // the restart wiped every deadline the wakeup tracked
}

void OverlayNode::fill_view(check::OverlayView& out) const {
  out.self = self_;
  out.live = true;  // the sim overrides from the injector for down hosts
  out.active_max = cfg_.membership.active_max;
  out.passive_max = cfg_.membership.passive_max;
  out.active.clear();
  out.passive.clear();
  out.eager.clear();
  for (const Peer& p : peers_) {
    out.active.push_back(p.id);
    if (p.eager) out.eager.push_back(p.id);
  }
  out.passive.assign(passive_.begin(), passive_.end());
}

// ---------------------------------------------------------------------------
// obs bridge

void publish_overlay(obs::Registry& registry,
                     std::span<const OverlayNode* const> nodes,
                     std::string_view prefix) {
  const std::string p(prefix);
  OverlayStats total;
  auto& repair_hist = registry.histogram(p + ".repair_latency_sec", 1e-3, 1e2);
  for (const OverlayNode* node : nodes) {
    const OverlayStats& s = node->stats();
    total.joins_sent += s.joins_sent;
    total.joins_rx += s.joins_rx;
    total.forward_joins += s.forward_joins;
    total.shuffles_sent += s.shuffles_sent;
    total.shuffles_rx += s.shuffles_rx;
    total.shuffle_replies += s.shuffle_replies;
    total.probes_sent += s.probes_sent;
    total.probes_suppressed += s.probes_suppressed;
    total.probe_timeouts += s.probe_timeouts;
    total.peers_died += s.peers_died;
    total.repairs_started += s.repairs_started;
    total.repairs_done += s.repairs_done;
    total.neighbor_rejects += s.neighbor_rejects;
    total.disconnects_rx += s.disconnects_rx;
    total.broadcasts += s.broadcasts;
    total.deliveries += s.deliveries;
    total.gossip_tx += s.gossip_tx;
    total.gossip_rx += s.gossip_rx;
    total.duplicates += s.duplicates;
    total.ihave_tx += s.ihave_tx;
    total.ihave_rx += s.ihave_rx;
    total.grafts_tx += s.grafts_tx;
    total.grafts_rx += s.grafts_rx;
    total.prunes_tx += s.prunes_tx;
    total.prunes_rx += s.prunes_rx;
    total.restarts += s.restarts;
    total.malformed += s.malformed;
    for (const double latency : node->repair_latencies())
      repair_hist.add(latency);
  }
  registry.counter(p + ".joins").set(total.joins_sent);
  registry.counter(p + ".joins_accepted").set(total.joins_rx);
  registry.counter(p + ".forward_joins").set(total.forward_joins);
  registry.counter(p + ".shuffles").set(total.shuffles_sent);
  registry.counter(p + ".shuffle_replies").set(total.shuffle_replies);
  registry.counter(p + ".probes").set(total.probes_sent);
  registry.counter(p + ".probes_suppressed").set(total.probes_suppressed);
  registry.counter(p + ".probe_timeouts").set(total.probe_timeouts);
  registry.counter(p + ".peers_died").set(total.peers_died);
  registry.counter(p + ".repairs_started").set(total.repairs_started);
  registry.counter(p + ".repairs_done").set(total.repairs_done);
  registry.counter(p + ".neighbor_rejects").set(total.neighbor_rejects);
  registry.counter(p + ".disconnects").set(total.disconnects_rx);
  registry.counter(p + ".broadcasts").set(total.broadcasts);
  registry.counter(p + ".deliveries").set(total.deliveries);
  registry.counter(p + ".gossip_tx").set(total.gossip_tx);
  registry.counter(p + ".gossip_rx").set(total.gossip_rx);
  registry.counter(p + ".duplicates").set(total.duplicates);
  registry.counter(p + ".ihave_tx").set(total.ihave_tx);
  registry.counter(p + ".ihave_rx").set(total.ihave_rx);
  registry.counter(p + ".grafts").set(total.grafts_tx);
  registry.counter(p + ".grafts_served").set(total.grafts_rx);
  registry.counter(p + ".prunes").set(total.prunes_tx);
  registry.counter(p + ".restarts").set(total.restarts);
  registry.counter(p + ".malformed").set(total.malformed);
}

}  // namespace ldlp::overlay
