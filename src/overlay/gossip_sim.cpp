#include "overlay/gossip_sim.hpp"

#include <algorithm>
#include <memory>

#include "check/broadcast.hpp"
#include "check/invariants.hpp"
#include "check/overlay_audit.hpp"
#include "check/timer_audit.hpp"
#include "common/histogram.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "recover/deadline_oracle.hpp"
#include "recover/overlay_convergence.hpp"

namespace ldlp::overlay {
namespace {

/// "h<i>" -> i; -1 for anything else (same naming the fleet soak uses,
/// so gossip schedules shrink and replay with identical spec semantics).
int host_index(const std::string& name) {
  if (name.size() < 2 || name[0] != 'h') return -1;
  int value = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    value = value * 10 + (name[i] - '0');
  }
  return value;
}

}  // namespace

GossipSimResult run_gossip_sim(const check::Schedule& schedule,
                               const GossipSimConfig& config) {
  GossipSimResult r;
  const auto expired = [&] {
    return config.deadline && config.deadline();
  };

  net::FabricConfig fabric_cfg;
  fabric_cfg.host_tick_sec = config.host_tick_sec;
  fabric_cfg.fault_seed = schedule.seed * 2 + 1;
  fabric_cfg.idle_skip_cap = config.idle_skip_cap;
  net::Fabric fabric(fabric_cfg);

  net::FatTreeConfig topo;
  topo.racks = config.racks;
  topo.hosts_per_rack = config.hosts_per_rack;
  topo.spines = config.spines;
  // Small pools keep allocation-failure paths hot, LDLP mode keeps the
  // batch scheduler in the loop; there is no TCP traffic here, so the
  // stack's UDP path carries everything.
  topo.proto.pool_mbufs = 384;
  topo.proto.pool_clusters = 96;
  topo.proto.mode = core::SchedMode::kLdlp;
  const std::vector<net::HostId> hosts = net::build_fat_tree(fabric, topo);
  // Wheel configuration (including the shed_guard mutation knob) must
  // land before the first arm — the overlay endpoints arm their wakeup
  // timers from their constructors.
  for (const net::HostId id : hosts)
    fabric.host(id).wheel().config() = config.wheel;

  // Fault wiring: the "fabric" spec is the topology-scoped plan, "h<i>"
  // specs are per-host churn injectors (restarts, device-scope noise).
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  std::vector<fault::FaultInjector*> host_inj(hosts.size(), nullptr);
  std::vector<bool> restart_victim(hosts.size(), false);
  for (const check::InjectorSpec& spec : schedule.injectors) {
    if (spec.host == "fabric") {
      fabric.set_fault_plan(spec.plan, spec.rng_seed);
      continue;
    }
    const int index = host_index(spec.host);
    if (index < 0 || static_cast<std::size_t>(index) >= hosts.size())
      continue;  // shrunk/foreign spec: ignore
    injectors.push_back(
        std::make_unique<fault::FaultInjector>(spec.plan, spec.rng_seed));
    fabric.host(hosts[static_cast<std::size_t>(index)])
        .attach_fault(injectors.back().get());
    host_inj[static_cast<std::size_t>(index)] = injectors.back().get();
    for (const fault::Episode& e : spec.plan.episodes())
      if (e.kind == fault::FaultKind::kHostRestart)
        restart_victim[static_cast<std::size_t>(index)] = true;
  }
  const auto faults_cleared = [&] {
    if (!fabric.faults_cleared()) return false;
    for (const auto& injector : injectors)
      if (!injector->faults_cleared()) return false;
    return true;
  };

  // Per-host structural auditors, as every fleet scenario installs.
  std::vector<std::unique_ptr<check::HostAuditor>> auditors;
  auditors.reserve(hosts.size());
  for (const net::HostId id : hosts) {
    auditors.push_back(std::make_unique<check::HostAuditor>(fabric.host(id)));
    auditors.back()->install();
  }

  // Timer oracles (the `clocks` scenario): TimerAuditor per host plus
  // one DeadlineOracle observing every wheel.
  std::vector<std::unique_ptr<check::TimerAuditor>> timer_auditors;
  recover::DeadlineOracle deadlines;
  if (config.timer_oracles) {
    timer_auditors.reserve(hosts.size());
    for (const net::HostId id : hosts) {
      timer_auditors.push_back(
          std::make_unique<check::TimerAuditor>(fabric.host(id)));
      deadlines.attach(fabric.host(id));
    }
  }

  // The overlay fleet. Node i's identity is its IPv4; its bootstrap
  // contact is node 0 (node 0's own contact is node 1, so a restarted
  // bootstrap can rejoin too).
  OverlayConfig overlay_cfg = config.overlay;
  overlay_cfg.seed = schedule.seed;
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  nodes.reserve(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i)
    nodes.push_back(std::make_unique<OverlayNode>(
        fabric.host(hosts[i]), net::host_ip(static_cast<std::uint32_t>(i)),
        overlay_cfg));

  // The three overlay oracles.
  check::BroadcastDeliveryOracle delivery;
  check::ViewAuditor views_auditor;
  recover::OverlayConvergenceOracle conv;
  conv.add_clearance(faults_cleared);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (restart_victim[i]) delivery.mark_unstable(nodes[i]->id());
    OverlayNode* node = nodes[i].get();
    node->set_deliver_hook(
        [&delivery, node](MsgId id, std::span<const std::uint8_t> payload) {
          delivery.delivered(node->id(), id.origin, id.seq, payload);
        });
  }

  // Per tick round: poll every endpoint, snapshot the views, audit.
  std::vector<check::OverlayView> views(nodes.size());
  fabric.set_pass_hook([&] {
    const double now = fabric.now();
    for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i]->poll(now);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->fill_view(views[i]);
      views[i].live = host_inj[i] == nullptr || !host_inj[i]->host_down();
    }
    views_auditor.audit(views, now);
    conv.on_pass(views);
    if (config.timer_oracles) {
      for (const auto& ta : timer_auditors) ta->run();
      deadlines.on_pass();
    }
  });

  // Phase 1+2 are interleaved: joins stagger across join_window_sec while
  // the storm's broadcasts pace across the fault horizon, so dissemination
  // and membership repair run concurrently with the adversity.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId contact = net::host_ip(i == 0 ? 1 : 0);
    const double when =
        config.join_window_sec * static_cast<double>(i) /
        static_cast<double>(nodes.size());
    nodes[i]->join(contact, when);
  }

  // Deterministic storm plan: origin k and fire time drawn from the seed,
  // origins restricted to stable (never-restarting) nodes.
  std::vector<std::size_t> stable_nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (!restart_victim[i]) stable_nodes.push_back(i);
  if (stable_nodes.empty()) {
    r.fail("no stable node to originate broadcasts");
    return r;
  }
  Rng storm_rng(schedule.seed ^ 0x60551bULL);
  struct PlannedCast {
    double at;
    std::size_t origin;
  };
  std::vector<PlannedCast> storm(config.storm_broadcasts);
  const double storm_begin = config.join_window_sec * 0.5;
  const double storm_end = config.fault_horizon_sec + 0.4;
  for (std::size_t k = 0; k < storm.size(); ++k) {
    storm[k].at = storm_rng.uniform(storm_begin, storm_end);
    storm[k].origin = stable_nodes[storm_rng.bounded(stable_nodes.size())];
  }
  std::sort(storm.begin(), storm.end(),
            [](const PlannedCast& a, const PlannedCast& b) {
              return a.at < b.at;
            });

  std::uint32_t payload_salt = 0;
  const auto cast_from = [&](std::size_t origin) {
    std::vector<std::uint8_t> payload(config.payload_bytes);
    std::uint64_t mix = schedule.seed ^ (++payload_salt * 0x9e3779b9ULL);
    for (auto& b : payload) b = static_cast<std::uint8_t>(splitmix64(mix));
    // Ground truth first: broadcast() delivers to the origin synchronously,
    // and the oracle must already know the id when that hook fires.
    const MsgId id = nodes[origin]->next_broadcast_id();
    delivery.broadcast(id.origin, id.seq, payload);
    (void)nodes[origin]->broadcast(payload, fabric.now());
  };

  std::size_t fired = 0;
  while (fired < storm.size() && !expired()) {
    // Fire everything due at this horizon. The clock itself can stop short
    // of `due` when no event lands inside the window (run_until only
    // advances now() by popping events), so gate on the horizon we asked
    // for, never on fabric.now().
    const double due = storm[fired].at;
    fabric.run_until(due);
    while (fired < storm.size() && storm[fired].at <= due) {
      cast_from(storm[fired].origin);
      ++fired;
    }
  }
  fabric.run_until(std::max(fabric.now(), storm_end));

  // Phase 3: heal and converge. Beacons from a stable node keep the
  // anti-entropy window fresh so any subtree orphaned by churn grafts
  // back in; the loop runs until the views hold still AND every stable
  // member has everything, then one final beacon-free drain settles the
  // last deliveries.
  conv.arm();
  const auto all_complete = [&] {
    for (const std::size_t i : stable_nodes)
      if (!delivery.complete(nodes[i]->id())) return false;
    return true;
  };
  double next_beacon = fabric.now() + 0.5;
  for (int iter = 0; iter < 160 && !expired(); ++iter) {
    if (conv.settled() && all_complete()) break;
    if (fabric.now() >= next_beacon) {
      cast_from(stable_nodes.front());
      next_beacon = fabric.now() + 0.5;
    }
    fabric.run_for(0.25);
  }
  for (int iter = 0; iter < 40 && !all_complete() && !expired(); ++iter)
    fabric.run_for(0.25);

  if (expired())
    r.fail("seed wall-clock budget exceeded (--seed_timeout_ms)");
  else if (!conv.settled())
    r.fail("overlay never converged (views still churning)");
  else if (!all_complete())
    r.fail("broadcast delivery incomplete after drain");

  // Phase 4: judgement. Final view snapshot for the shape checks.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->fill_view(views[i]);
    views[i].live = host_inj[i] == nullptr || !host_inj[i]->host_down();
  }
  views_auditor.final_audit(views, fabric.now());
  (void)conv.finalize(views);
  std::vector<std::uint32_t> members;
  for (const auto& node : nodes) members.push_back(node->id());
  (void)delivery.finalize(members);

  for (const std::string& v : views_auditor.violations()) {
    r.fail("view auditor: " + v);
    r.violations.push_back("view: " + v);
  }
  for (const std::string& v : conv.violations()) {
    r.fail("overlay convergence: " + v);
    r.violations.push_back("conv: " + v);
  }
  for (const std::string& v : delivery.violations()) {
    r.fail("broadcast oracle: " + v);
    r.violations.push_back("bcast: " + v);
  }

  // Fabric hygiene, exactly as the fleet scenario asserts it: faults
  // drained, graphs empty, pools leak-free, frame ledger balanced. Mute
  // the endpoints first but keep polling: timers stop feeding the fabric
  // while the in-flight tail still lands and drains out of the sockets —
  // removing the hook before the tail settles would strand the last
  // datagrams in socket queues and read as an mbuf leak.
  for (const auto& node : nodes) node->set_muted(true);
  const auto arp_parked = [&] {
    for (const net::HostId id : hosts)
      if (fabric.host(id).eth().arp().pending_total() != 0) return true;
    return false;
  };
  // ARP parks count too: a probe parked behind an unresolved neighbor
  // holds an mbuf until the resolution lands or the retry ladder gives
  // up (~15 s of sim time worst case), so the settle loop waits for both.
  for (int i = 0; i < 80 && (!faults_cleared() || arp_parked()) && !expired();
       ++i)
    fabric.run_for(0.5);
  fabric.set_pass_hook(nullptr);
  if (!faults_cleared() && !expired())
    r.fail("faults never cleared (active episodes or frames in flight)");
  for (const net::HostId id : hosts) fabric.host(id).attach_fault(nullptr);
  for (const net::HostId id : hosts) {
    stack::Host& h = fabric.host(id);
    h.pump();
    if (h.graph().backlog() != 0)
      r.fail(h.name() + ": graph backlog not drained");
    if (h.pool().stats().mbufs_outstanding() != 0)
      r.fail(h.name() + ": mbuf leak (" +
             std::to_string(h.pool().stats().mbufs_outstanding()) +
             " outstanding)");
  }
  if (fabric.conservation_residual() != 0)
    r.fail("fabric conservation violated (residual " +
           std::to_string(fabric.conservation_residual()) + ")");
  for (const auto& aud : auditors) {
    for (const std::string& v : aud->violations()) {
      r.fail("invariant auditor: " + v);
      r.violations.push_back("audit: " + v);
    }
  }

  // Evidence summary.
  LogHistogram repair_hist(1e-3, 1e2, 20);
  std::uint64_t useful = 0;
  for (const auto& node : nodes) {
    const OverlayStats& s = node->stats();
    r.broadcasts += s.broadcasts;
    r.deliveries += s.deliveries;
    r.gossip_rx += s.gossip_rx;
    r.duplicates += s.duplicates;
    r.grafts += s.grafts_tx;
    r.prunes += s.prunes_tx;
    r.repairs_done += s.repairs_done;
    r.probes_suppressed += s.probes_suppressed;
    useful += s.deliveries - s.broadcasts;  // non-origin deliveries
    for (const double latency : node->repair_latencies())
      repair_hist.add(latency);
  }
  r.suppressed_ticks = fabric.suppressed_ticks();
  r.relay_redundancy =
      useful > 0 ? static_cast<double>(r.gossip_rx) /
                       static_cast<double>(useful)
                 : 0.0;
  const check::BroadcastStats& bs = delivery.stats();
  const std::uint64_t owed =
      bs.broadcasts * (stable_nodes.size() - 1);
  r.delivery_completeness =
      owed > 0 && delivery.ok()
          ? 1.0
          : (owed > 0 ? static_cast<double>(bs.deliveries) /
                            static_cast<double>(owed)
                      : 0.0);
  if (r.delivery_completeness > 1.0) r.delivery_completeness = 1.0;
  r.repair_p99_sec = repair_hist.count() > 0 ? repair_hist.quantile(0.99) : 0.0;
  r.sim_time_sec = fabric.now();
  if (r.pass && r.broadcasts == 0)
    r.fail("no broadcasts issued (storm never started)");

  // Timer judgement last: destroy the endpoints first so their wakeup
  // timers cancel — after that, anything still armed beyond the PCB/ARP
  // consolidated timers is a leak the final audit flags.
  if (config.timer_oracles) {
    nodes.clear();
    for (const auto& ta : timer_auditors) {
      ta->final_audit();
      for (const std::string& v : ta->violations()) {
        r.fail("timer auditor: " + v);
        r.violations.push_back("timer: " + v);
      }
    }
    deadlines.finalize();
    deadlines.detach();
    for (const std::string& v : deadlines.violations()) {
      r.fail("deadline oracle: " + v);
      r.violations.push_back("deadline: " + v);
    }
  }
  for (const net::HostId id : hosts) {
    const time::WheelStats& ws = fabric.host(id).wheel().stats();
    r.timer_arms += ws.arms;
    r.timer_fires += ws.fires;
    r.timer_cancels += ws.cancels;
    r.timer_spurious += ws.spurious_fires;
    r.timer_shed += ws.shed;
  }
  return r;
}

}  // namespace ldlp::overlay
