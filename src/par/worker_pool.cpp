#include "par/worker_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace ldlp::par {

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  registries_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w)
    registries_.push_back(std::make_unique<obs::Registry>());
}

void WorkerPool::run(std::size_t count, const Job& job) {
  ++barriers_;
  jobs_run_ += count;
  if (workers_ <= 1) {
    WorkerContext ctx{0, registries_[0].get()};
    for (std::size_t j = 0; j < count; ++j) job(j, ctx);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads.emplace_back([&, w] {
      WorkerContext ctx{w, registries_[w].get()};
      for (std::size_t j = cursor.fetch_add(1, std::memory_order_relaxed);
           j < count; j = cursor.fetch_add(1, std::memory_order_relaxed)) {
        try {
          job(j, ctx);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          return;  // this worker stops; others drain the remaining jobs
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void WorkerPool::merge_registries(obs::Registry& target) {
  for (auto& reg : registries_) {
    target.merge(*reg);
    reg->clear();
  }
}

void WorkerPool::publish(obs::Registry& reg) const {
  reg.gauge("par.pool.workers").set(static_cast<double>(workers_));
  reg.counter("par.pool.jobs").set(jobs_run_);
  reg.counter("par.pool.barriers").set(barriers_);
}

}  // namespace ldlp::par
