#include "par/shard_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "stack/netdev.hpp"

namespace ldlp::par {
namespace {

// Disjoint address planes, far enough apart that no footprint crosses.
constexpr std::uint64_t kCodeBase = 0x0100'0000;
constexpr std::uint64_t kDataBase = 0x0800'0000;
constexpr std::uint64_t kMsgBase = 0x4000'0000;

constexpr std::uint64_t align_up(std::uint64_t n, std::uint64_t a) {
  return (n + a - 1) / a * a;
}

struct Arrival {
  double cycles = 0.0;   ///< Arrival time in core cycles.
  std::uint32_t slot = 0;  ///< Message buffer slot within the shard ring.
};

}  // namespace

ShardEngineResult ShardEngine::run() const {
  LDLP_ASSERT(cfg_.shards >= 1 && cfg_.flows >= 1);
  LDLP_ASSERT(cfg_.arrival_rate_hz > 0.0 && cfg_.clock_hz > 0.0);

  const core::ShardPlan plan =
      core::plan_shards(cfg_.stack, cfg_.memory.icache, cfg_.memory.dcache,
                        cfg_.shards);
  const std::uint32_t batch_limit =
      cfg_.batch_limit != 0 ? cfg_.batch_limit : plan.batch_limit;

  // Flow population: distinct client endpoints talking to one server —
  // the small-message server workload of section 4.
  const stack::FlowHash hash(cfg_.symmetric);
  std::vector<std::uint32_t> flow_shard(cfg_.flows);
  for (std::uint32_t f = 0; f < cfg_.flows; ++f) {
    stack::FlowKey key;
    key.src_ip = 0x0a000000u + f + 1;          // 10.0.x.y clients
    key.dst_ip = 0x0a00ffffu;                  // the server
    key.src_port = static_cast<std::uint16_t>(10000 + f);
    key.dst_port = 53;
    key.proto = 17;
    flow_shard[f] = hash(key) % cfg_.shards;
  }

  // Poisson arrivals over the flows; steer each to its flow's shard.
  Rng rng(cfg_.seed);
  const double cycles_per_sec = cfg_.clock_hz;
  const double mean_gap_sec = 1.0 / cfg_.arrival_rate_hz;
  std::vector<std::vector<Arrival>> queues(cfg_.shards);
  double now_sec = 0.0;
  for (std::uint64_t m = 0; m < cfg_.messages; ++m) {
    now_sec += rng.exponential(mean_gap_sec);
    const auto flow =
        static_cast<std::uint32_t>(rng.bounded(cfg_.flows));
    queues[flow_shard[flow]].push_back(
        Arrival{now_sec * cycles_per_sec, 0});
  }

  sim::MemorySystem mem(cfg_.memory);
  mem.set_context_count(cfg_.shards);

  const std::uint64_t code_stride =
      align_up(cfg_.stack.layer_code_bytes, 64);
  const std::uint64_t data_stride =
      align_up(std::max<std::uint64_t>(cfg_.stack.layer_data_bytes, 1), 64);
  const std::uint64_t msg_stride =
      align_up(std::max<std::uint64_t>(cfg_.stack.message_bytes, 1), 64);
  const std::uint32_t slots = std::max<std::uint32_t>(batch_limit, 1);

  ShardEngineResult out;
  out.batch_limit = batch_limit;
  out.shards.resize(cfg_.shards);
  std::vector<double> latencies_sec;
  latencies_sec.reserve(cfg_.messages);
  std::uint64_t total_batches = 0;

  // Shards are independent machines (private L1s, private queues), so a
  // shard-at-a-time walk over per-shard clocks is exact.
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    mem.set_context(s);
    auto& queue = queues[s];
    for (std::size_t i = 0; i < queue.size(); ++i)
      queue[i].slot = static_cast<std::uint32_t>(i % slots);

    const std::uint64_t i0 = mem.icache_of(s).stats().misses;
    const std::uint64_t d0 = mem.dcache_of(s).stats().misses;

    double clock = 0.0;  // this shard core's cycle counter
    std::uint64_t shard_batches = 0;
    std::size_t next = 0;
    const double coalesce_cycles = cfg_.coalesce_sec * cycles_per_sec;
    while (next < queue.size()) {
      if (clock < queue[next].cycles) clock = queue[next].cycles;
      if (coalesce_cycles > 0.0) {
        // Interrupt coalescing: hold off until the batch fills or the
        // oldest message has waited out the window. With the window at 0
        // this reduces to the pure-polling line above.
        double open = queue[next].cycles + coalesce_cycles;
        if (next + batch_limit - 1 < queue.size())
          open = std::min(open, queue[next + batch_limit - 1].cycles);
        if (clock < open) clock = open;
      }
      // LDLP batch formation: everything that has arrived, d-cache bound.
      std::size_t end = next;
      while (end < queue.size() && end - next < batch_limit &&
             queue[end].cycles <= clock) {
        ++end;
      }
      // One layer at a time across the whole batch (section 3.1): the
      // layer's text is fetched once per pass and amortised over the
      // batch; each message drags its buffer and the layer's data in.
      std::uint64_t stall = 0;
      for (std::uint32_t layer = 0; layer < cfg_.stack.num_layers; ++layer) {
        const std::uint64_t code = kCodeBase + layer * code_stride;
        const std::uint64_t data =
            kDataBase + (std::uint64_t{s} * cfg_.stack.num_layers + layer) *
                            data_stride;
        for (std::size_t m = next; m < end; ++m) {
          stall += mem.access(sim::Access::kIFetch, code,
                              cfg_.stack.layer_code_bytes);
          stall += mem.access(sim::Access::kRead, data,
                              cfg_.stack.layer_data_bytes);
          const std::uint64_t buf =
              kMsgBase + (std::uint64_t{s} * slots + queue[m].slot) *
                             msg_stride;
          stall += mem.access(layer == 0 ? sim::Access::kWrite
                                         : sim::Access::kRead,
                              buf, cfg_.stack.message_bytes);
        }
      }
      const std::uint64_t compute = std::uint64_t{cfg_.layer_cycles} *
                                    cfg_.stack.num_layers * (end - next);
      clock += static_cast<double>(compute + stall);
      for (std::size_t m = next; m < end; ++m) {
        latencies_sec.push_back((clock - queue[m].cycles) / cycles_per_sec);
      }
      ++shard_batches;
      ++total_batches;
      next = end;
    }

    ShardStats& stats = out.shards[s];
    stats.messages = queue.size();
    stats.batches = shard_batches;
    stats.i_misses = mem.icache_of(s).stats().misses - i0;
    stats.d_misses = mem.dcache_of(s).stats().misses - d0;
    out.max_shard_messages =
        std::max(out.max_shard_messages, stats.messages);
  }
  std::uint64_t total_i = 0;
  std::uint64_t total_d = 0;
  for (const ShardStats& s : out.shards) {
    total_i += s.i_misses;
    total_d += s.d_misses;
  }
  const double n = static_cast<double>(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(latencies_sec.size())));
  out.i_miss_per_msg = static_cast<double>(total_i) / n;
  out.d_miss_per_msg = static_cast<double>(total_d) / n;
  out.mean_batch = total_batches != 0
                       ? n / static_cast<double>(total_batches)
                       : 0.0;
  double sum = 0.0;
  for (const double l : latencies_sec) sum += l;
  out.mean_latency_sec = sum / n;
  std::sort(latencies_sec.begin(), latencies_sec.end());
  if (!latencies_sec.empty()) {
    const std::size_t at = std::min(
        latencies_sec.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(
                                            latencies_sec.size())));
    out.p99_latency_sec = latencies_sec[at];
  }
  const double fair =
      static_cast<double>(cfg_.messages) / cfg_.shards;
  out.max_shard_share =
      fair > 0.0 ? static_cast<double>(out.max_shard_messages) / fair : 1.0;
  return out;
}

}  // namespace ldlp::par
