// ldlp::par — real-thread parallel execution engine.
//
// Everything else in this repository is a deterministic simulation; par is
// the one place real std::thread concurrency enters, and it is built so
// that determinism survives the contact. The rules:
//
//   * Jobs are independent by construction (separate hosts, pools, seeds)
//     and write results only into job-indexed slots, so the result vector
//     is identical whatever the thread interleaving.
//   * Each worker gets a private obs::Registry; after the barrier the
//     per-worker registries merge into one with order-independent
//     combiners (counters sum, gauges max, histograms pool), so the
//     merged snapshot is identical for --jobs 1 and --jobs 8.
//   * Reporting happens after the barrier, on the caller's thread, in job
//     order — stdout and artifacts are bit-identical to a serial run.
//
// With workers <= 1 run() executes inline on the calling thread through
// the same code path, which is what makes "serial" a degenerate case of
// "parallel" rather than a second implementation to keep in sync.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"

namespace ldlp::par {

/// Per-worker execution context handed to every job.
struct WorkerContext {
  std::size_t worker = 0;          ///< Worker index in [0, workers()).
  obs::Registry* registry = nullptr;  ///< This worker's private registry.
};

/// A job: invoked with its job index and the running worker's context.
using Job = std::function<void(std::size_t job, WorkerContext&)>;

class WorkerPool {
 public:
  /// `workers` real threads; 0 and 1 both mean "inline on the caller".
  explicit WorkerPool(std::size_t workers);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Run jobs [0, count) to completion — returns only after every job has
  /// finished (the barrier). Jobs are claimed from a shared cursor, so
  /// which worker runs which job is scheduling-dependent; anything a job
  /// writes must therefore be job-indexed or go through its context
  /// registry. The first exception a job throws is rethrown here after
  /// the barrier.
  void run(std::size_t count, const Job& job);

  /// Merge every per-worker registry into `target` (worker order — which
  /// is immaterial, since the combiners are order-independent) and clear
  /// them for the next run.
  void merge_registries(obs::Registry& target);

  /// Direct access, e.g. for a serial caller that wants to read worker 0.
  [[nodiscard]] obs::Registry& worker_registry(std::size_t w) {
    return *registries_[w];
  }

  /// Pool counters (par.pool.*) into `reg`: workers, jobs run, barriers.
  void publish(obs::Registry& reg) const;

 private:
  std::size_t workers_;
  // unique_ptr keeps registries stable if the vector ever reallocates.
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  std::uint64_t jobs_run_ = 0;
  std::uint64_t barriers_ = 0;
};

}  // namespace ldlp::par
