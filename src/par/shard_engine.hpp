// ShardEngine: receive-side flow sharding on the simulated machine.
//
// FlexTOE-style multi-queue receive meets the paper's LDLP batching: a
// Toeplitz flow hash spreads flows over N shards, each shard owns a
// private primary cache pair (sim::MemorySystem contexts) and drains its
// queue in LDLP batches — one layer at a time across the whole batch, so
// i-cache fills amortise within the shard while the shard's flow state
// keeps its d-cache locality. The engine answers the sweep's question:
// at equal total load, what happens to per-shard i-cache misses and to
// queueing latency as the shard count grows from 1 (the paper's machine)
// to 8?
//
// The model is deliberately the same one the fig5/fig6 benches trust:
// every byte the stack touches goes through MemorySystem::access, layer
// code is shared text, layer/flow data is per-shard, and message buffers
// live in a per-shard slot ring sized by the batch limit. Everything is
// a pure function of the config (seed included) — two runs agree bit for
// bit, which is what lets the regression gate pin the numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/blocking.hpp"
#include "sim/memory_system.hpp"

namespace ldlp::par {

struct ShardEngineConfig {
  std::uint32_t shards = 1;
  std::uint32_t flows = 64;
  std::uint64_t messages = 20000;
  double arrival_rate_hz = 8000.0;  ///< Total offered load, all flows.
  core::StackFootprint stack{};     ///< Code/data/message footprints.
  sim::MemoryConfig memory{};       ///< Primary geometry per shard context.
  double clock_hz = 100e6;          ///< Shard core clock.
  std::uint32_t layer_cycles = 400; ///< Compute per layer per message.
  std::uint64_t seed = 1;
  bool symmetric = false;           ///< Symmetric (co-steering) flow hash.
  std::uint32_t batch_limit = 0;    ///< 0 = core::plan_shards estimate.
  /// Receive coalescing window (the NIC rx-usecs knob): an idle shard
  /// opens its next batch when batch_limit messages are queued or the
  /// oldest queued message has waited this long, whichever is first.
  /// 0 = pure polling (a batch is whatever has arrived by now).
  double coalesce_sec = 0.0;
};

struct ShardStats {
  std::uint64_t messages = 0;
  std::uint64_t batches = 0;
  std::uint64_t i_misses = 0;  ///< This shard's private i-cache misses.
  std::uint64_t d_misses = 0;
};

struct ShardEngineResult {
  std::vector<ShardStats> shards;
  std::uint32_t batch_limit = 0;      ///< The per-shard bound actually used.
  double mean_latency_sec = 0.0;      ///< Arrival -> batch completion.
  double p99_latency_sec = 0.0;
  double mean_batch = 0.0;            ///< Messages per batch, all shards.
  double i_miss_per_msg = 0.0;        ///< Aggregate, all shards.
  double d_miss_per_msg = 0.0;
  std::uint64_t max_shard_messages = 0;
  /// Load-balance quality: busiest shard's share over the fair share
  /// (1.0 = perfectly even).
  double max_shard_share = 1.0;
};

class ShardEngine {
 public:
  explicit ShardEngine(ShardEngineConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const ShardEngineConfig& config() const noexcept {
    return cfg_;
  }

  /// Run the full trace through the sharded receive path.
  [[nodiscard]] ShardEngineResult run() const;

 private:
  ShardEngineConfig cfg_;
};

}  // namespace ldlp::par
