// DNS wire format (RFC 1035 subset).
//
// DNS is the first small-message protocol the paper names: ~30-200 byte
// queries and responses whose processing cost is all header parsing and
// table lookups — exactly the regime where code locality dominates. This
// codec covers the header, questions, and A/CNAME/PTR resource records,
// including decoding of name compression pointers (servers here emit
// uncompressed names, but must parse compressed ones).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ldlp::dns {

inline constexpr std::size_t kHeaderLen = 12;
inline constexpr std::size_t kMaxNameLen = 255;

enum class RType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kPtr = 12,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImpl = 4,
  kRefused = 5,
};

struct Question {
  std::string name;  ///< Dotted lowercase, no trailing dot ("a.example").
  RType type = RType::kA;
};

struct ResourceRecord {
  std::string name;
  RType type = RType::kA;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;  ///< 4-byte address for A; encoded
                                    ///< name for CNAME/NS/PTR.

  [[nodiscard]] static ResourceRecord a(std::string name, std::uint32_t ip,
                                        std::uint32_t ttl);
  [[nodiscard]] static ResourceRecord cname(std::string name,
                                            const std::string& target,
                                            std::uint32_t ttl);
  /// For A records: the packed IPv4 address.
  [[nodiscard]] std::optional<std::uint32_t> a_addr() const noexcept;
  /// For CNAME/NS/PTR: the (uncompressed) target name.
  [[nodiscard]] std::optional<std::string> target_name() const;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool authoritative = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  Rcode rcode = Rcode::kNoError;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;

  [[nodiscard]] static DnsMessage query(std::uint16_t id, std::string name,
                                        RType type = RType::kA);
  [[nodiscard]] static DnsMessage response_to(const DnsMessage& q);
};

/// Encode; empty vector if a name is malformed (too long, empty label).
[[nodiscard]] std::vector<std::uint8_t> encode(const DnsMessage& msg);

/// Decode; handles compression pointers (with loop protection).
[[nodiscard]] std::optional<DnsMessage> decode(
    std::span<const std::uint8_t> data);

/// Name codec helpers, exposed for tests.
[[nodiscard]] bool encode_name(const std::string& name,
                               std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<std::string> decode_name(
    std::span<const std::uint8_t> msg, std::size_t& pos);

/// Case-insensitive name normalisation (RFC 1035 §2.3.3).
[[nodiscard]] std::string normalize_name(std::string name);

}  // namespace ldlp::dns
