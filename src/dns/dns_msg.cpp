#include "dns/dns_msg.hpp"

#include <cctype>

#include "common/byteorder.hpp"

namespace ldlp::dns {

namespace {
constexpr std::uint16_t kClassIn = 1;
constexpr std::uint8_t kPointerTag = 0xc0;
}  // namespace

std::string normalize_name(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (!name.empty() && name.back() == '.') name.pop_back();
  return name;
}

bool encode_name(const std::string& name, std::vector<std::uint8_t>& out) {
  if (name.size() > kMaxNameLen) return false;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len == 0 || len > 63) {
      if (len == 0 && name.empty()) break;  // root name
      return false;
    }
    out.push_back(static_cast<std::uint8_t>(len));
    out.insert(out.end(), name.begin() + static_cast<long>(start),
               name.begin() + static_cast<long>(dot));
    if (dot == name.size()) break;
    start = dot + 1;
  }
  out.push_back(0);
  return true;
}

std::optional<std::string> decode_name(std::span<const std::uint8_t> msg,
                                       std::size_t& pos) {
  std::string out;
  std::size_t cursor = pos;
  bool jumped = false;
  int jumps = 0;
  for (;;) {
    if (cursor >= msg.size()) return std::nullopt;
    const std::uint8_t len = msg[cursor];
    if ((len & kPointerTag) == kPointerTag) {
      // Compression pointer: 14-bit offset.
      if (cursor + 1 >= msg.size()) return std::nullopt;
      if (++jumps > 16) return std::nullopt;  // loop protection
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | msg[cursor + 1];
      if (!jumped) pos = cursor + 2;
      jumped = true;
      if (target >= msg.size()) return std::nullopt;
      cursor = target;
      continue;
    }
    if (len > 63) return std::nullopt;
    ++cursor;
    if (len == 0) break;
    if (cursor + len > msg.size()) return std::nullopt;
    if (!out.empty()) out += '.';
    out.append(reinterpret_cast<const char*>(msg.data() + cursor), len);
    cursor += len;
    if (out.size() > kMaxNameLen) return std::nullopt;
  }
  if (!jumped) pos = cursor;
  return normalize_name(std::move(out));
}

ResourceRecord ResourceRecord::a(std::string name, std::uint32_t ip,
                                 std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = normalize_name(std::move(name));
  rr.type = RType::kA;
  rr.ttl = ttl;
  rr.rdata.resize(4);
  store_be32(rr.rdata.data(), ip);
  return rr;
}

ResourceRecord ResourceRecord::cname(std::string name,
                                     const std::string& target,
                                     std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = normalize_name(std::move(name));
  rr.type = RType::kCname;
  rr.ttl = ttl;
  (void)encode_name(normalize_name(target), rr.rdata);
  return rr;
}

std::optional<std::uint32_t> ResourceRecord::a_addr() const noexcept {
  if (type != RType::kA || rdata.size() != 4) return std::nullopt;
  return load_be32(rdata.data());
}

std::optional<std::string> ResourceRecord::target_name() const {
  if (type != RType::kCname && type != RType::kNs && type != RType::kPtr)
    return std::nullopt;
  std::size_t pos = 0;
  return decode_name(rdata, pos);
}

DnsMessage DnsMessage::query(std::uint16_t id, std::string name, RType type) {
  DnsMessage msg;
  msg.id = id;
  msg.questions.push_back(Question{normalize_name(std::move(name)), type});
  return msg;
}

DnsMessage DnsMessage::response_to(const DnsMessage& q) {
  DnsMessage msg;
  msg.id = q.id;
  msg.is_response = true;
  msg.recursion_desired = q.recursion_desired;
  msg.questions = q.questions;
  return msg;
}

namespace {

bool encode_rr(const ResourceRecord& rr, std::vector<std::uint8_t>& out) {
  if (!encode_name(rr.name, out)) return false;
  std::uint8_t fixed[10];
  store_be16(fixed, static_cast<std::uint16_t>(rr.type));
  store_be16(fixed + 2, kClassIn);
  store_be32(fixed + 4, rr.ttl);
  store_be16(fixed + 8, static_cast<std::uint16_t>(rr.rdata.size()));
  out.insert(out.end(), fixed, fixed + 10);
  out.insert(out.end(), rr.rdata.begin(), rr.rdata.end());
  return true;
}

std::optional<ResourceRecord> decode_rr(std::span<const std::uint8_t> msg,
                                        std::size_t& pos) {
  ResourceRecord rr;
  auto name = decode_name(msg, pos);
  if (!name.has_value()) return std::nullopt;
  rr.name = std::move(*name);
  if (pos + 10 > msg.size()) return std::nullopt;
  rr.type = static_cast<RType>(load_be16(msg.data() + pos));
  const std::uint16_t rclass = load_be16(msg.data() + pos + 2);
  rr.ttl = load_be32(msg.data() + pos + 4);
  const std::uint16_t rdlen = load_be16(msg.data() + pos + 8);
  pos += 10;
  if (rclass != kClassIn || pos + rdlen > msg.size()) return std::nullopt;
  if (rr.type == RType::kCname || rr.type == RType::kNs ||
      rr.type == RType::kPtr) {
    // Decompress the embedded name so rdata is self-contained.
    std::size_t rpos = pos;
    const auto target = decode_name(msg, rpos);
    if (!target.has_value()) return std::nullopt;
    if (!encode_name(*target, rr.rdata)) return std::nullopt;
  } else {
    rr.rdata.assign(msg.begin() + static_cast<long>(pos),
                    msg.begin() + static_cast<long>(pos) + rdlen);
  }
  pos += rdlen;
  return rr;
}

}  // namespace

std::vector<std::uint8_t> encode(const DnsMessage& msg) {
  std::vector<std::uint8_t> out(kHeaderLen);
  store_be16(out.data(), msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  if (msg.authoritative) flags |= 0x0400;
  if (msg.recursion_desired) flags |= 0x0100;
  if (msg.recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.rcode) & 0x0f;
  store_be16(out.data() + 2, flags);
  store_be16(out.data() + 4, static_cast<std::uint16_t>(msg.questions.size()));
  store_be16(out.data() + 6, static_cast<std::uint16_t>(msg.answers.size()));
  store_be16(out.data() + 8, static_cast<std::uint16_t>(msg.authority.size()));
  store_be16(out.data() + 10, 0);  // no additional records

  for (const Question& q : msg.questions) {
    if (!encode_name(q.name, out)) return {};
    std::uint8_t fixed[4];
    store_be16(fixed, static_cast<std::uint16_t>(q.type));
    store_be16(fixed + 2, kClassIn);
    out.insert(out.end(), fixed, fixed + 4);
  }
  for (const ResourceRecord& rr : msg.answers) {
    if (!encode_rr(rr, out)) return {};
  }
  for (const ResourceRecord& rr : msg.authority) {
    if (!encode_rr(rr, out)) return {};
  }
  return out;
}

std::optional<DnsMessage> decode(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderLen) return std::nullopt;
  DnsMessage msg;
  msg.id = load_be16(data.data());
  const std::uint16_t flags = load_be16(data.data() + 2);
  msg.is_response = (flags & 0x8000) != 0;
  msg.authoritative = (flags & 0x0400) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<Rcode>(flags & 0x0f);
  const std::uint16_t qd = load_be16(data.data() + 4);
  const std::uint16_t an = load_be16(data.data() + 6);
  const std::uint16_t ns = load_be16(data.data() + 8);
  if (qd > 32 || an > 64 || ns > 64) return std::nullopt;  // sanity bounds

  std::size_t pos = kHeaderLen;
  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    auto name = decode_name(data, pos);
    if (!name.has_value() || pos + 4 > data.size()) return std::nullopt;
    q.name = std::move(*name);
    q.type = static_cast<RType>(load_be16(data.data() + pos));
    const std::uint16_t qclass = load_be16(data.data() + pos + 2);
    pos += 4;
    if (qclass != kClassIn) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < an; ++i) {
    auto rr = decode_rr(data, pos);
    if (!rr.has_value()) return std::nullopt;
    msg.answers.push_back(std::move(*rr));
  }
  for (std::uint16_t i = 0; i < ns; ++i) {
    auto rr = decode_rr(data, pos);
    if (!rr.has_value()) return std::nullopt;
    msg.authority.push_back(std::move(*rr));
  }
  return msg;
}

}  // namespace ldlp::dns
