// DNS server and stub resolver over the library's UDP stack.
//
// DnsServer: an authoritative server for a static zone (A and CNAME
// records), answering over a bound UDP port; unknown names get NXDOMAIN.
// CNAMEs are chased server-side up to a small depth so a single response
// carries the chain, as real authoritative servers do within one zone.
//
// DnsResolver: a caching stub resolver — positive and negative caching
// with TTLs, retry with timeout, at most one outstanding query per name.
// Both sit on stack::Host, so every query and response crosses the full
// Ethernet/IP/UDP path and is scheduled by the host's StackGraph
// (conventional or LDLP).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/dns_msg.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::dns {

inline constexpr std::uint16_t kDnsPort = 53;

struct ServerStats {
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t malformed = 0;
};

class DnsServer {
 public:
  /// Binds the DNS port on `host`. The host must outlive the server.
  explicit DnsServer(stack::Host& host, std::uint16_t port = kDnsPort);

  void add_a(const std::string& name, std::uint32_t ip,
             std::uint32_t ttl = 300);
  void add_cname(const std::string& name, const std::string& target,
                 std::uint32_t ttl = 300);

  /// Drain pending queries from the socket and answer them. Call after
  /// host.pump(). Returns queries handled.
  std::size_t poll();

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  /// Socket queries arrive on (for delivery oracles).
  [[nodiscard]] stack::SocketId socket() const noexcept { return socket_; }

 private:
  struct ZoneEntry {
    std::vector<ResourceRecord> records;  ///< A and/or CNAME for the name.
  };

  void answer(const DnsMessage& query, std::uint32_t to_ip,
              std::uint16_t to_port);

  stack::Host& host_;
  std::uint16_t port_;
  stack::SocketId socket_ = stack::kNoSocket;
  std::unordered_map<std::string, ZoneEntry> zone_;
  ServerStats stats_;
};

struct ResolverStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t answers = 0;
  std::uint64_t failures = 0;
  std::uint64_t exhaustions_cached = 0;  ///< Retry-exhaustion negatives.
};

class DnsResolver {
 public:
  using Callback =
      std::function<void(const std::string& name,
                         std::optional<std::uint32_t> address)>;

  struct Config {
    std::uint32_t server_ip = 0;
    std::uint16_t server_port = kDnsPort;
    std::uint16_t local_port = 10053;
    double retry_sec = 0.5;   ///< First retry timeout; doubles per try.
    double retry_max_sec = 2.0;  ///< Backoff ceiling.
    std::uint32_t max_retries = 3;
    double negative_ttl = 30.0;
    /// Negative-cache TTL written when a lookup exhausts its retries —
    /// a dead or partitioned server, as opposed to an authoritative
    /// NXDOMAIN. Short by design: the cache absorbs a retry storm
    /// without wedging recovery once the path heals. Consecutive
    /// exhaustions for the same name double the TTL up to
    /// failure_ttl_max; any answer resets the backoff.
    double failure_ttl = 0.25;
    double failure_ttl_max = 4.0;
  };

  DnsResolver(stack::Host& host, Config config);
  ~DnsResolver();

  /// Start (or satisfy from cache) a lookup; the callback fires when an
  /// answer, NXDOMAIN (nullopt), or retry exhaustion (nullopt) arrives.
  void resolve(const std::string& name, Callback cb);

  /// Drain responses and fire timers. Call after host.pump(). The
  /// resolver keeps one wakeup timer on the host's wheel armed at its
  /// earliest retry deadline, so an idle poll (no responses pending, no
  /// deadline due) returns without scanning the inflight table.
  void poll();

  [[nodiscard]] const ResolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::size_t inflight() const noexcept {
    return inflight_.size();
  }
  /// Socket the resolver receives responses on (for delivery oracles).
  [[nodiscard]] stack::SocketId socket() const noexcept { return socket_; }

 private:
  struct CacheEntry {
    std::optional<std::uint32_t> address;  ///< nullopt = negative entry.
    double expires_at = 0.0;
    /// Last retry-exhaustion TTL for this name (0 = none). Kept in the
    /// entry past expiry so consecutive-failure memory survives — the
    /// expired entry is no longer served, but the next exhaustion
    /// continues the backoff instead of restarting it.
    double backoff = 0.0;
  };
  struct Inflight {
    std::string name;
    std::vector<Callback> callbacks;
    std::uint16_t txid = 0;
    double deadline = 0.0;
    std::uint32_t tries = 0;
  };

  void send_query(Inflight& inflight);
  void complete(const std::string& name, std::optional<std::uint32_t> addr,
                double ttl_sec);
  /// Re-arm the wakeup timer at the min inflight deadline (cancel when
  /// none). The fire itself does nothing — the harness polls — but the
  /// armed deadline is what lets poll() early-exit and what the timer
  /// auditor / deadline oracle observe.
  void sync_wheel();

  stack::Host& host_;
  Config cfg_;
  stack::SocketId socket_ = stack::kNoSocket;
  time::TimerId wake_ = time::kNoTimer;
  double next_due_ = 0.0;  ///< Cached min inflight deadline (+inf if none).
  std::uint16_t next_txid_ = 1;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::unordered_map<std::string, Inflight> inflight_;
  ResolverStats stats_;
};

}  // namespace ldlp::dns
