#include "dns/resolver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace ldlp::dns {

// ---- DnsServer -------------------------------------------------------------

DnsServer::DnsServer(stack::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  socket_ = host_.sockets().create(stack::SocketKind::kDatagram, 64 * 1024);
  const bool bound = host_.udp().bind(port_, socket_);
  LDLP_ASSERT_MSG(bound, "DNS port already bound");
}

void DnsServer::add_a(const std::string& name, std::uint32_t ip,
                      std::uint32_t ttl) {
  const std::string key = normalize_name(name);
  zone_[key].records.push_back(ResourceRecord::a(key, ip, ttl));
}

void DnsServer::add_cname(const std::string& name, const std::string& target,
                          std::uint32_t ttl) {
  const std::string key = normalize_name(name);
  zone_[key].records.push_back(
      ResourceRecord::cname(key, normalize_name(target), ttl));
}

std::size_t DnsServer::poll() {
  std::size_t handled = 0;
  while (auto dgram = host_.sockets().read_datagram(socket_)) {
    ++handled;
    ++stats_.queries;
    const auto query = decode(dgram->payload);
    if (!query.has_value() || query->is_response ||
        query->questions.empty()) {
      ++stats_.malformed;
      continue;
    }
    answer(*query, dgram->from_ip, dgram->from_port);
  }
  return handled;
}

void DnsServer::answer(const DnsMessage& query, std::uint32_t to_ip,
                       std::uint16_t to_port) {
  DnsMessage response = DnsMessage::response_to(query);
  response.authoritative = true;

  // Resolve the (first) question, chasing CNAMEs inside the zone.
  std::string name = query.questions.front().name;
  const RType want = query.questions.front().type;
  bool found = false;
  for (int depth = 0; depth < 8; ++depth) {
    const auto it = zone_.find(name);
    if (it == zone_.end()) break;
    bool chased = false;
    for (const ResourceRecord& rr : it->second.records) {
      if (rr.type == want) {
        response.answers.push_back(rr);
        found = true;
      } else if (rr.type == RType::kCname) {
        response.answers.push_back(rr);
        found = true;  // a terminal CNAME is a positive answer
        if (const auto target = rr.target_name()) {
          name = *target;
          chased = true;
        }
      }
    }
    if (!chased) break;
  }

  if (!found && response.answers.empty()) {
    response.rcode = Rcode::kNxDomain;
    ++stats_.nxdomain;
  } else {
    ++stats_.answered;
  }
  const auto bytes = encode(response);
  if (!bytes.empty()) host_.udp().send(port_, to_ip, to_port, bytes);
}

// ---- DnsResolver -----------------------------------------------------------

DnsResolver::DnsResolver(stack::Host& host, Config config)
    : host_(host), cfg_(config) {
  LDLP_ASSERT(cfg_.server_ip != 0);
  socket_ = host_.sockets().create(stack::SocketKind::kDatagram, 64 * 1024);
  const bool bound = host_.udp().bind(cfg_.local_port, socket_);
  LDLP_ASSERT_MSG(bound, "resolver port already bound");
  next_due_ = std::numeric_limits<double>::infinity();
}

DnsResolver::~DnsResolver() {
  if (wake_ != time::kNoTimer) host_.wheel().cancel(wake_);
}

void DnsResolver::resolve(const std::string& raw_name, Callback cb) {
  const std::string name = normalize_name(raw_name);
  ++stats_.lookups;

  const auto cached = cache_.find(name);
  if (cached != cache_.end() && cached->second.expires_at > host_.now()) {
    if (cached->second.address.has_value()) {
      ++stats_.cache_hits;
    } else {
      ++stats_.negative_hits;
    }
    cb(name, cached->second.address);
    return;
  }

  auto [it, fresh] = inflight_.try_emplace(name);
  Inflight& inflight = it->second;
  inflight.name = name;
  inflight.callbacks.push_back(std::move(cb));
  if (!fresh) return;  // coalesced onto the outstanding query

  inflight.txid = next_txid_++;
  if (next_txid_ == 0) next_txid_ = 1;
  inflight.tries = 0;
  send_query(inflight);
  sync_wheel();
}

void DnsResolver::send_query(Inflight& inflight) {
  ++stats_.queries_sent;
  ++inflight.tries;
  // Capped exponential backoff: retry_sec, 2x, 4x, ... up to retry_max_sec.
  double timeout = cfg_.retry_sec;
  for (std::uint32_t i = 1; i < inflight.tries && timeout < cfg_.retry_max_sec;
       ++i)
    timeout *= 2.0;
  timeout = std::min(timeout, cfg_.retry_max_sec);
  inflight.deadline = host_.now() + timeout;
  const auto bytes = encode(DnsMessage::query(inflight.txid, inflight.name));
  host_.udp().send(cfg_.local_port, cfg_.server_ip, cfg_.server_port, bytes);
}

void DnsResolver::complete(const std::string& name,
                           std::optional<std::uint32_t> addr,
                           double ttl_sec) {
  cache_[name] = CacheEntry{addr, host_.now() + ttl_sec};
  const auto it = inflight_.find(name);
  if (it == inflight_.end()) return;
  std::vector<Callback> callbacks = std::move(it->second.callbacks);
  inflight_.erase(it);
  for (Callback& cb : callbacks) cb(name, addr);
}

void DnsResolver::sync_wheel() {
  double due = std::numeric_limits<double>::infinity();
  for (const auto& [name, inflight] : inflight_)
    due = std::min(due, inflight.deadline);
  next_due_ = due;
  time::TimerWheel& wheel = host_.wheel();
  if (!std::isfinite(due)) {
    if (wake_ != time::kNoTimer) {
      wheel.cancel(wake_);
      wake_ = time::kNoTimer;
    }
    return;
  }
  if (wake_ != time::kNoTimer && wheel.deadline_of(wake_) == due) return;
  if (wake_ != time::kNoTimer) wheel.cancel(wake_);
  wake_ = wheel.arm(due, time::TimerClass::kLiveness, [] {});
}

void DnsResolver::poll() {
  // Nothing arrived and nothing is due: skip the drain and the scan.
  if (host_.now() < next_due_ &&
      host_.sockets().pending_datagrams(socket_) == 0)
    return;

  // Responses.
  while (auto dgram = host_.sockets().read_datagram(socket_)) {
    const auto response = decode(dgram->payload);
    if (!response.has_value() || !response->is_response ||
        response->questions.empty())
      continue;
    const std::string name = response->questions.front().name;
    const auto it = inflight_.find(name);
    if (it == inflight_.end() || it->second.txid != response->id)
      continue;  // stale or spoofed txid

    if (response->rcode == Rcode::kNxDomain) {
      ++stats_.failures;
      complete(name, std::nullopt, cfg_.negative_ttl);
      continue;
    }
    // Follow the CNAME chain within the answer section to an A record.
    std::string current = name;
    std::optional<std::uint32_t> addr;
    double ttl = 300.0;
    for (int depth = 0; depth < 8 && !addr.has_value(); ++depth) {
      bool advanced = false;
      for (const ResourceRecord& rr : response->answers) {
        if (rr.name != current) continue;
        if (const auto a = rr.a_addr()) {
          addr = a;
          ttl = rr.ttl;
          break;
        }
        if (const auto target = rr.target_name()) {
          current = *target;
          advanced = true;
          break;
        }
      }
      if (!advanced && !addr.has_value()) break;
    }
    if (addr.has_value()) {
      ++stats_.answers;
      complete(name, addr, ttl);
    } else {
      ++stats_.failures;
      complete(name, std::nullopt, cfg_.negative_ttl);
    }
  }

  // Retries.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    Inflight& inflight = it->second;
    if (host_.now() < inflight.deadline) {
      ++it;
      continue;
    }
    if (inflight.tries > cfg_.max_retries) {
      ++stats_.failures;
      ++stats_.exhaustions_cached;
      std::vector<Callback> callbacks = std::move(inflight.callbacks);
      const std::string name = inflight.name;
      it = inflight_.erase(it);
      // Remember the unreachable name briefly so a retry storm can't
      // hammer a dead path; the cache is written before the callbacks
      // fire so a re-entrant resolve() is absorbed by it.
      const auto prev = cache_.find(name);
      const double last = prev == cache_.end() ? 0.0 : prev->second.backoff;
      const double ttl = last <= 0.0
                             ? cfg_.failure_ttl
                             : std::min(last * 2.0, cfg_.failure_ttl_max);
      cache_[name] = CacheEntry{std::nullopt, host_.now() + ttl, ttl};
      for (Callback& cb : callbacks) cb(name, std::nullopt);
      continue;
    }
    ++stats_.retries;
    send_query(inflight);
    ++it;
  }
  sync_wheel();
}

}  // namespace ldlp::dns
