#include "signal/node.hpp"

#include "buf/packet.hpp"
#include "common/assert.hpp"

namespace ldlp::signal {

// ---- Layers ---------------------------------------------------------------

/// Bottom: raw PDUs into SSCOP; in-order payloads continue upward.
class SignallingNode::LinkLayer final : public core::Layer {
 public:
  explicit LinkLayer(SignallingNode& node)
      : core::Layer("sscop"), node_(node) {}

 protected:
  void process(core::Message msg) override {
    std::vector<std::uint8_t> pdu(msg.packet.length());
    if (!msg.packet.copy_out(0, pdu)) return;
    const double arrival = msg.arrival;
    node_.link_.set_deliver([this, arrival](std::vector<std::uint8_t> payload) {
      buf::Packet pkt = buf::Packet::from_bytes(node_.pool_, payload);
      if (!pkt) return;
      core::Message up(std::move(pkt), arrival);
      emit(std::move(up), 0);
    });
    node_.link_.on_pdu(pdu, node_.now_);
  }

 private:
  SignallingNode& node_;
};

/// Middle: Q.93B syntax validation (header shape, IE well-formedness).
class SignallingNode::CodecLayer final : public core::Layer {
 public:
  explicit CodecLayer(SignallingNode& node)
      : core::Layer("q93b-codec"), node_(node) {}

 protected:
  void process(core::Message msg) override {
    std::vector<std::uint8_t> bytes(msg.packet.length());
    if (!msg.packet.copy_out(0, bytes)) return;
    if (!decode(bytes).has_value()) {
      ++node_.stats_.codec_errors;
      return;
    }
    emit(std::move(msg), 0);
  }

 private:
  SignallingNode& node_;
};

/// Top: the call state machines.
class SignallingNode::CallLayer final : public core::Layer {
 public:
  explicit CallLayer(SignallingNode& node)
      : core::Layer("call-control"), node_(node) {}

 protected:
  void process(core::Message msg) override {
    std::vector<std::uint8_t> bytes(msg.packet.length());
    if (!msg.packet.copy_out(0, bytes)) return;
    const auto decoded = decode(bytes);
    if (!decoded.has_value()) return;  // codec layer already validated
    node_.call_control_.on_message(*decoded);
  }

 private:
  SignallingNode& node_;
};

// ---- Node -----------------------------------------------------------------

SignallingNode::SignallingNode(std::string name, core::SchedMode mode,
                               std::size_t batch_limit)
    : name_(std::move(name)), pool_(2048, 256) {
  link_layer_ = std::make_unique<LinkLayer>(*this);
  codec_layer_ = std::make_unique<CodecLayer>(*this);
  call_layer_ = std::make_unique<CallLayer>(*this);

  link_id_ = graph_.add_layer(*link_layer_);
  const core::LayerId codec_id = graph_.add_layer(*codec_layer_);
  const core::LayerId call_id = graph_.add_layer(*call_layer_);
  graph_.connect(link_id_, codec_id, 0);
  graph_.connect(codec_id, call_id, 0);
  graph_.set_mode(mode);
  graph_.set_batch_limit(batch_limit);

  link_.set_transmit([this](std::vector<std::uint8_t> pdu) {
    ++stats_.pdus_out;
    if (peer_ != nullptr) peer_->enqueue_from_peer(std::move(pdu));
  });
  call_control_.set_send([this](const SigMessage& msg) {
    (void)link_.send(encode(msg), now_);
  });
}

SignallingNode::~SignallingNode() = default;

void SignallingNode::connect(SignallingNode& a, SignallingNode& b) noexcept {
  a.peer_ = &b;
  b.peer_ = &a;
}

void SignallingNode::set_loss_rate(double rate, std::uint64_t seed) noexcept {
  loss_rate_ = rate;
  loss_rng_.reseed(seed);
}

void SignallingNode::enqueue_from_peer(std::vector<std::uint8_t> pdu) {
  if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
    ++stats_.pdus_lost;
    return;
  }
  inbox_.push_back(std::move(pdu));
}

std::size_t SignallingNode::pump(std::size_t max_pdus) {
  std::size_t handled = 0;
  bool any = false;
  while (handled < max_pdus && !inbox_.empty()) {
    buf::Packet pkt = buf::Packet::from_bytes(pool_, inbox_.front());
    inbox_.pop_front();
    ++stats_.pdus_in;
    if (!pkt) continue;
    graph_.inject(link_id_, core::Message(std::move(pkt), now_));
    ++handled;
    any = true;
  }
  if (any && graph_.mode() == core::SchedMode::kLdlp) graph_.run();
  return handled;
}

void SignallingNode::advance(double dt_sec) {
  now_ += dt_sec;
  link_.on_timer(now_);
}

}  // namespace ldlp::signal
