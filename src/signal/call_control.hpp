// Call control: the Q.93B connection state machines.
//
// Two roles share one engine:
//  * the switch side answers SETUP with CONNECT (allocating a VPI/VCI from
//    its pool) and RELEASE with RELEASE_COMPLETE;
//  * the user side originates calls and releases them.
//
// The paper's performance goal — 10 000 setup/teardown pairs per second at
// ~100 us per message on a workstation CPU — is exercised against this
// engine by examples/signalling_switch.cpp and bench/native_micro.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "signal/message.hpp"

namespace ldlp::signal {

enum class CallState : std::uint8_t {
  kNull,
  kCallInitiated,    ///< SETUP sent, awaiting CONNECT.
  kCallPresent,      ///< SETUP received (transient on the switch side).
  kActive,
  kReleaseRequest,   ///< RELEASE sent, awaiting RELEASE_COMPLETE.
};

struct Call {
  std::uint32_t call_ref = 0;
  CallState state = CallState::kNull;
  bool originator = false;
  std::optional<ConnectionId> vc;
};

struct CallControlStats {
  std::uint64_t setups_sent = 0;
  std::uint64_t setups_received = 0;
  std::uint64_t connects = 0;
  std::uint64_t releases = 0;
  std::uint64_t release_completes = 0;
  std::uint64_t rejected = 0;     ///< SETUPs refused (no VC available).
  std::uint64_t protocol_errors = 0;
  std::uint64_t active_calls = 0;
};

class CallControl {
 public:
  using SendFn = std::function<void(const SigMessage&)>;
  /// Fired when a call this side originated becomes active / is cleared.
  using CallEventFn = std::function<void(const Call&)>;

  /// `vci_base`/`vci_count` bound the switch-side VC pool.
  explicit CallControl(std::uint16_t vci_base = 64,
                       std::uint16_t vci_count = 4096);

  void set_send(SendFn fn) { send_ = std::move(fn); }
  void set_on_active(CallEventFn fn) { on_active_ = std::move(fn); }
  void set_on_cleared(CallEventFn fn) { on_cleared_ = std::move(fn); }

  /// User side: originate a call. Returns the call reference.
  std::uint32_t originate(std::span<const std::uint8_t> called,
                          std::span<const std::uint8_t> calling,
                          const TrafficDescriptor& td);

  /// User side: clear an active call.
  void release(std::uint32_t call_ref, Cause cause = Cause::kNormalClearing);

  /// Both sides: feed a decoded message.
  void on_message(const SigMessage& msg);

  [[nodiscard]] const CallControlStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::optional<CallState> state(
      std::uint32_t call_ref) const noexcept;
  [[nodiscard]] std::size_t call_count() const noexcept {
    return calls_.size();
  }

 private:
  void handle_setup(const SigMessage& msg);
  void handle_connect(const SigMessage& msg);
  void handle_release(const SigMessage& msg);
  void handle_release_complete(const SigMessage& msg);
  void clear_call(std::uint32_t call_ref);
  [[nodiscard]] std::optional<ConnectionId> alloc_vc();
  void free_vc(const ConnectionId& cid);

  SendFn send_;
  CallEventFn on_active_;
  CallEventFn on_cleared_;
  std::unordered_map<std::uint32_t, Call> calls_;
  std::vector<std::uint16_t> free_vcis_;
  std::uint32_t next_call_ref_ = 1;
  CallControlStats stats_;
};

}  // namespace ldlp::signal
