#include "signal/message.hpp"

#include "common/byteorder.hpp"

namespace ldlp::signal {

std::string_view msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kSetup: return "SETUP";
    case MsgType::kCallProceeding: return "CALL_PROCEEDING";
    case MsgType::kConnect: return "CONNECT";
    case MsgType::kConnectAck: return "CONNECT_ACK";
    case MsgType::kRelease: return "RELEASE";
    case MsgType::kReleaseComplete: return "RELEASE_COMPLETE";
    case MsgType::kStatus: return "STATUS";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const SigMessage& msg) {
  std::vector<std::uint8_t> body;
  for (const Ie& ie : msg.ies) encode_ie(ie, body);

  std::vector<std::uint8_t> out;
  out.reserve(kMsgHeaderLen + body.size());
  out.push_back(kProtocolDiscriminator);
  out.push_back(3);  // call reference length
  const std::uint32_t ref = msg.call_ref & 0x007fffff;
  out.push_back(static_cast<std::uint8_t>((ref >> 16) |
                                          (msg.from_originator ? 0 : 0x80)));
  out.push_back(static_cast<std::uint8_t>(ref >> 8));
  out.push_back(static_cast<std::uint8_t>(ref));
  out.push_back(static_cast<std::uint8_t>(msg.type));
  out.push_back(0);  // spare (Q.2931 has a 1-byte pad here)
  std::uint8_t len[2];
  store_be16(len, static_cast<std::uint16_t>(body.size()));
  out.insert(out.end(), len, len + 2);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<SigMessage> decode(std::span<const std::uint8_t> data) {
  if (data.size() < kMsgHeaderLen) return std::nullopt;
  if (data[0] != kProtocolDiscriminator || data[1] != 3) return std::nullopt;
  SigMessage msg;
  msg.from_originator = (data[2] & 0x80) == 0;
  msg.call_ref = (static_cast<std::uint32_t>(data[2] & 0x7f) << 16) |
                 (static_cast<std::uint32_t>(data[3]) << 8) | data[4];
  msg.type = static_cast<MsgType>(data[5]);
  const std::uint16_t body_len = load_be16(data.data() + 7);
  if (kMsgHeaderLen + body_len > data.size()) return std::nullopt;

  std::size_t pos = kMsgHeaderLen;
  const auto body = data.subspan(0, kMsgHeaderLen + body_len);
  while (pos < body.size()) {
    auto ie = decode_ie(body, pos);
    if (!ie.has_value()) return std::nullopt;
    msg.ies.push_back(std::move(*ie));
  }
  return msg;
}

SigMessage make_setup(std::uint32_t call_ref,
                      std::span<const std::uint8_t> called,
                      std::span<const std::uint8_t> calling,
                      const TrafficDescriptor& td) {
  SigMessage msg;
  msg.call_ref = call_ref;
  msg.from_originator = true;
  msg.type = MsgType::kSetup;
  msg.ies.push_back(make_number(IeId::kCalledNumber, called));
  msg.ies.push_back(make_number(IeId::kCallingNumber, calling));
  msg.ies.push_back(make_traffic_descriptor(td));
  return msg;
}

SigMessage make_connect(std::uint32_t call_ref, const ConnectionId& cid) {
  SigMessage msg;
  msg.call_ref = call_ref;
  msg.from_originator = false;
  msg.type = MsgType::kConnect;
  msg.ies.push_back(make_connection_id(cid));
  return msg;
}

SigMessage make_release(std::uint32_t call_ref, Cause cause,
                        bool from_originator) {
  SigMessage msg;
  msg.call_ref = call_ref;
  msg.from_originator = from_originator;
  msg.type = MsgType::kRelease;
  msg.ies.push_back(make_cause(cause));
  return msg;
}

SigMessage make_release_complete(std::uint32_t call_ref,
                                 bool from_originator) {
  SigMessage msg;
  msg.call_ref = call_ref;
  msg.from_originator = from_originator;
  msg.type = MsgType::kReleaseComplete;
  return msg;
}

}  // namespace ldlp::signal
