// Q.93B-style signalling message codec.
//
// Header: protocol discriminator (1), call-reference length (1, always 3
// here), call reference (3, flag bit in the top bit distinguishes the
// originating side), message type (1), message length (2). Body: IEs.
// A typical encoded SETUP is ~60-100 bytes — the paper's canonical small
// message.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "signal/ie.hpp"

namespace ldlp::signal {

inline constexpr std::uint8_t kProtocolDiscriminator = 0x09;  ///< Q.2931.
inline constexpr std::size_t kMsgHeaderLen = 9;

enum class MsgType : std::uint8_t {
  kSetup = 0x05,
  kCallProceeding = 0x02,
  kConnect = 0x07,
  kConnectAck = 0x0f,
  kRelease = 0x4d,
  kReleaseComplete = 0x5a,
  kStatus = 0x7d,
};

[[nodiscard]] std::string_view msg_type_name(MsgType type) noexcept;

struct SigMessage {
  std::uint32_t call_ref = 0;  ///< 23-bit value.
  bool from_originator = true;  ///< Call-reference flag.
  MsgType type = MsgType::kSetup;
  std::vector<Ie> ies;

  [[nodiscard]] const Ie* find(IeId id) const noexcept {
    for (const Ie& ie : ies) {
      if (ie.id == id) return &ie;
    }
    return nullptr;
  }
};

[[nodiscard]] std::vector<std::uint8_t> encode(const SigMessage& msg);
[[nodiscard]] std::optional<SigMessage> decode(
    std::span<const std::uint8_t> data);

/// Convenience builders for the standard call flow.
[[nodiscard]] SigMessage make_setup(std::uint32_t call_ref,
                                    std::span<const std::uint8_t> called,
                                    std::span<const std::uint8_t> calling,
                                    const TrafficDescriptor& td);
[[nodiscard]] SigMessage make_connect(std::uint32_t call_ref,
                                      const ConnectionId& cid);
[[nodiscard]] SigMessage make_release(std::uint32_t call_ref, Cause cause,
                                      bool from_originator);
[[nodiscard]] SigMessage make_release_complete(std::uint32_t call_ref,
                                               bool from_originator);

}  // namespace ldlp::signal
