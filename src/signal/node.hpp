// SignallingNode: a complete Q.93B signalling endpoint.
//
// Three scheduled layers — reliable link (SSCOP-lite), message syntax
// (codec validation), call control — wired through a core::StackGraph, so
// a signalling switch runs under conventional or LDLP scheduling exactly
// like the TCP stack. Nodes connect pairwise over an in-memory byte pipe
// with optional loss injection (which SSCOP then repairs).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "buf/pool.hpp"
#include "common/rng.hpp"
#include "core/stack_graph.hpp"
#include "signal/call_control.hpp"
#include "signal/sscop.hpp"

namespace ldlp::signal {

struct NodeStats {
  std::uint64_t pdus_in = 0;
  std::uint64_t pdus_out = 0;
  std::uint64_t pdus_lost = 0;   ///< Dropped by injected loss.
  std::uint64_t codec_errors = 0;
};

class SignallingNode {
 public:
  explicit SignallingNode(std::string name,
                          core::SchedMode mode = core::SchedMode::kConventional,
                          std::size_t batch_limit = 0);
  ~SignallingNode();

  SignallingNode(const SignallingNode&) = delete;
  SignallingNode& operator=(const SignallingNode&) = delete;

  static void connect(SignallingNode& a, SignallingNode& b) noexcept;

  /// Fraction of PDUs silently dropped on *reception* (models a lossy
  /// link; SSCOP retransmission recovers).
  void set_loss_rate(double rate, std::uint64_t seed = 42) noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] CallControl& calls() noexcept { return call_control_; }
  [[nodiscard]] SscopLink& link() noexcept { return link_; }
  [[nodiscard]] core::StackGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t inbox_backlog() const noexcept {
    return inbox_.size();
  }

  /// Drain the inbox through the layer graph. Returns PDUs handled.
  std::size_t pump(std::size_t max_pdus = SIZE_MAX);

  /// Advance time and fire link timers.
  void advance(double dt_sec);

 private:
  class LinkLayer;
  class CodecLayer;
  class CallLayer;

  void enqueue_from_peer(std::vector<std::uint8_t> pdu);

  std::string name_;
  double now_ = 0.0;
  buf::MbufPool pool_;
  SscopLink link_;
  CallControl call_control_;
  core::StackGraph graph_;
  std::unique_ptr<LinkLayer> link_layer_;
  std::unique_ptr<CodecLayer> codec_layer_;
  std::unique_ptr<CallLayer> call_layer_;
  core::LayerId link_id_ = core::kNoLayer;
  std::deque<std::vector<std::uint8_t>> inbox_;
  SignallingNode* peer_ = nullptr;
  double loss_rate_ = 0.0;
  Rng loss_rng_{42};
  NodeStats stats_;
};

}  // namespace ldlp::signal
