#include "signal/sscop.hpp"

#include <algorithm>

#include "common/byteorder.hpp"

namespace ldlp::signal {

namespace {
constexpr std::size_t kPduHeader = 5;  ///< type (1) + seq (4).
}  // namespace

void SscopLink::emit_sd(std::uint32_t seq,
                        std::span<const std::uint8_t> payload) {
  if (!transmit_) return;
  std::vector<std::uint8_t> pdu(kPduHeader + payload.size());
  pdu[0] = static_cast<std::uint8_t>(PduType::kSd);
  store_be32(pdu.data() + 1, seq);
  std::copy(payload.begin(), payload.end(), pdu.begin() + kPduHeader);
  transmit_(std::move(pdu));
}

void SscopLink::emit_stat() {
  if (!transmit_) return;
  ++stats_.stats_pdus;
  std::vector<std::uint8_t> pdu(kPduHeader);
  pdu[0] = static_cast<std::uint8_t>(PduType::kStat);
  store_be32(pdu.data() + 1, vr_r_);
  transmit_(std::move(pdu));
}

bool SscopLink::send(std::vector<std::uint8_t> payload, double now_sec) {
  if (rtxq_.size() >= cfg_.window) return false;
  const std::uint32_t seq = vt_s_++;
  emit_sd(seq, payload);
  ++stats_.sd_sent;
  rtxq_.push_back(Unacked{seq, std::move(payload), now_sec});
  return true;
}

void SscopLink::on_pdu(std::span<const std::uint8_t> pdu, double now_sec) {
  if (pdu.size() < kPduHeader) return;
  const auto type = static_cast<PduType>(pdu[0]);
  const std::uint32_t seq = load_be32(pdu.data() + 1);
  switch (type) {
    case PduType::kSd: {
      ++stats_.sd_received;
      if (seq != vr_r_) {
        // Out of order: drop and report our position so the peer
        // retransmits (simpler than Q.2110's selective USTAT and
        // sufficient for in-order pipes with loss).
        ++stats_.sd_out_of_order;
        emit_stat();
        return;
      }
      ++vr_r_;
      ++stats_.delivered;
      if (deliver_)
        deliver_(std::vector<std::uint8_t>(pdu.begin() + kPduHeader,
                                           pdu.end()));
      if (cfg_.stat_every != 0 && ++sds_since_stat_ >= cfg_.stat_every) {
        sds_since_stat_ = 0;
        emit_stat();
      }
      break;
    }
    case PduType::kPoll: {
      emit_stat();
      break;
    }
    case PduType::kStat: {
      // Cumulative ack: everything below seq is confirmed.
      while (!rtxq_.empty() &&
             static_cast<std::int32_t>(rtxq_.front().seq - seq) < 0) {
        rtxq_.pop_front();
      }
      vt_a_ = seq;
      poll_gap_ = 0.0;  // peer is alive — POLL cadence back to eager
      (void)now_sec;
      break;
    }
  }
}

void SscopLink::on_timer(double now_sec) {
  // Retransmit stale PDUs; each PDU's timeout doubles per retransmit up
  // to the cap, so a cut pipe costs a trickle, not a flood.
  for (Unacked& u : rtxq_) {
    double timeout = cfg_.retransmit_after_sec;
    for (std::uint32_t i = 0;
         i < u.rtx_count && timeout < cfg_.retransmit_max_sec; ++i)
      timeout *= 2.0;
    timeout = std::min(timeout, cfg_.retransmit_max_sec);
    if (now_sec - u.sent_at >= timeout) {
      emit_sd(u.seq, u.payload);
      u.sent_at = now_sec;
      ++u.rtx_count;
      ++stats_.retransmits;
    }
  }
  // Periodic POLL keeps STATs flowing when data is one-way. The POLL
  // interval itself backs off while no STAT comes back.
  if (poll_gap_ <= 0.0) poll_gap_ = cfg_.poll_interval_sec;
  if (!rtxq_.empty() && now_sec - last_poll_ >= poll_gap_) {
    last_poll_ = now_sec;
    poll_gap_ = std::min(poll_gap_ * 2.0, cfg_.poll_max_sec);
    ++stats_.polls;
    if (transmit_) {
      std::vector<std::uint8_t> pdu(kPduHeader);
      pdu[0] = static_cast<std::uint8_t>(PduType::kPoll);
      store_be32(pdu.data() + 1, vt_s_);
      transmit_(std::move(pdu));
    }
  }
}

}  // namespace ldlp::signal
