#include "signal/call_control.hpp"

namespace ldlp::signal {

CallControl::CallControl(std::uint16_t vci_base, std::uint16_t vci_count) {
  free_vcis_.reserve(vci_count);
  // LIFO pool: lowest VCI on top for deterministic assignment in tests.
  for (std::uint16_t i = vci_count; i > 0; --i)
    free_vcis_.push_back(static_cast<std::uint16_t>(vci_base + i - 1));
}

std::optional<ConnectionId> CallControl::alloc_vc() {
  if (free_vcis_.empty()) return std::nullopt;
  const std::uint16_t vci = free_vcis_.back();
  free_vcis_.pop_back();
  return ConnectionId{0, vci};
}

void CallControl::free_vc(const ConnectionId& cid) {
  free_vcis_.push_back(cid.vci);
}

std::uint32_t CallControl::originate(std::span<const std::uint8_t> called,
                                     std::span<const std::uint8_t> calling,
                                     const TrafficDescriptor& td) {
  const std::uint32_t ref = next_call_ref_++ & 0x007fffff;
  Call call;
  call.call_ref = ref;
  call.state = CallState::kCallInitiated;
  call.originator = true;
  calls_[ref] = call;
  ++stats_.setups_sent;
  if (send_) send_(make_setup(ref, called, calling, td));
  return ref;
}

void CallControl::release(std::uint32_t call_ref, Cause cause) {
  const auto it = calls_.find(call_ref);
  if (it == calls_.end() || it->second.state != CallState::kActive) {
    ++stats_.protocol_errors;
    return;
  }
  it->second.state = CallState::kReleaseRequest;
  ++stats_.releases;
  if (send_) send_(make_release(call_ref, cause, it->second.originator));
}

void CallControl::on_message(const SigMessage& msg) {
  switch (msg.type) {
    case MsgType::kSetup: handle_setup(msg); break;
    case MsgType::kConnect: handle_connect(msg); break;
    case MsgType::kRelease: handle_release(msg); break;
    case MsgType::kReleaseComplete: handle_release_complete(msg); break;
    default:
      ++stats_.protocol_errors;
      break;
  }
}

void CallControl::handle_setup(const SigMessage& msg) {
  ++stats_.setups_received;
  if (calls_.count(msg.call_ref) != 0) {
    ++stats_.protocol_errors;
    return;
  }
  const auto vc = alloc_vc();
  if (!vc.has_value()) {
    ++stats_.rejected;
    if (send_) {
      SigMessage rc = make_release_complete(msg.call_ref, false);
      rc.ies.push_back(make_cause(Cause::kResourceUnavailable));
      send_(rc);
    }
    return;
  }
  Call call;
  call.call_ref = msg.call_ref;
  call.state = CallState::kActive;
  call.originator = false;
  call.vc = vc;
  calls_[msg.call_ref] = call;
  ++stats_.connects;
  ++stats_.active_calls;
  if (send_) send_(make_connect(msg.call_ref, *vc));
  if (on_active_) on_active_(calls_[msg.call_ref]);
}

void CallControl::handle_connect(const SigMessage& msg) {
  const auto it = calls_.find(msg.call_ref);
  if (it == calls_.end() || it->second.state != CallState::kCallInitiated) {
    ++stats_.protocol_errors;
    return;
  }
  if (const Ie* ie = msg.find(IeId::kConnectionId)) {
    it->second.vc = parse_connection_id(*ie);
  }
  it->second.state = CallState::kActive;
  ++stats_.active_calls;
  if (on_active_) on_active_(it->second);
}

void CallControl::handle_release(const SigMessage& msg) {
  const auto it = calls_.find(msg.call_ref);
  if (it == calls_.end()) {
    ++stats_.protocol_errors;
    // Stateless courtesy reply so the peer clears.
    if (send_) send_(make_release_complete(msg.call_ref, false));
    return;
  }
  ++stats_.release_completes;
  if (send_)
    send_(make_release_complete(msg.call_ref, !it->second.originator));
  clear_call(msg.call_ref);
}

void CallControl::handle_release_complete(const SigMessage& msg) {
  const auto it = calls_.find(msg.call_ref);
  if (it == calls_.end()) return;  // already cleared; benign
  clear_call(msg.call_ref);
}

void CallControl::clear_call(std::uint32_t call_ref) {
  const auto it = calls_.find(call_ref);
  if (it == calls_.end()) return;
  if (it->second.state == CallState::kActive ||
      it->second.state == CallState::kReleaseRequest) {
    --stats_.active_calls;
  }
  if (it->second.vc.has_value() && !it->second.originator)
    free_vc(*it->second.vc);
  Call cleared = it->second;
  cleared.state = CallState::kNull;
  calls_.erase(it);
  if (on_cleared_) on_cleared_(cleared);
}

std::optional<CallState> CallControl::state(
    std::uint32_t call_ref) const noexcept {
  const auto it = calls_.find(call_ref);
  if (it == calls_.end()) return std::nullopt;
  return it->second.state;
}

}  // namespace ldlp::signal
