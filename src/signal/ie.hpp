// Q.93B/Q.2931-style information elements (TLV bodies).
//
// The paper's target workload is ATM connection control: small messages
// (~100 bytes) made of a fixed header plus a handful of information
// elements. This is a compact subset sufficient for SETUP / CONNECT /
// RELEASE flows: each IE is id (1 byte), length (2 bytes big-endian),
// value.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ldlp::signal {

enum class IeId : std::uint8_t {
  kCause = 0x08,
  kConnectionId = 0x5a,     ///< VPI/VCI assignment.
  kQosParam = 0x5c,
  kTrafficDescriptor = 0x59,
  kCalledNumber = 0x70,
  kCallingNumber = 0x6c,
};

struct Ie {
  IeId id{};
  std::vector<std::uint8_t> value;
};

/// Typed views over common IEs.
struct ConnectionId {
  std::uint16_t vpi = 0;
  std::uint16_t vci = 0;
};

struct TrafficDescriptor {
  std::uint32_t peak_cell_rate = 0;      ///< cells/sec.
  std::uint32_t sustained_cell_rate = 0;
};

enum class Cause : std::uint8_t {
  kNormalClearing = 16,
  kUserBusy = 17,
  kNoRouteToDestination = 3,
  kResourceUnavailable = 47,
  kInvalidCallReference = 81,
};

[[nodiscard]] Ie make_connection_id(const ConnectionId& cid);
[[nodiscard]] Ie make_traffic_descriptor(const TrafficDescriptor& td);
[[nodiscard]] Ie make_cause(Cause cause);
[[nodiscard]] Ie make_number(IeId id, std::span<const std::uint8_t> digits);

[[nodiscard]] std::optional<ConnectionId> parse_connection_id(const Ie& ie);
[[nodiscard]] std::optional<TrafficDescriptor> parse_traffic_descriptor(
    const Ie& ie);
[[nodiscard]] std::optional<Cause> parse_cause(const Ie& ie);

/// Wire helpers used by the message codec.
void encode_ie(const Ie& ie, std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<Ie> decode_ie(std::span<const std::uint8_t> data,
                                          std::size_t& pos);

}  // namespace ldlp::signal
