#include "signal/ie.hpp"

#include "common/byteorder.hpp"

namespace ldlp::signal {

Ie make_connection_id(const ConnectionId& cid) {
  Ie ie;
  ie.id = IeId::kConnectionId;
  ie.value.resize(4);
  store_be16(ie.value.data(), cid.vpi);
  store_be16(ie.value.data() + 2, cid.vci);
  return ie;
}

Ie make_traffic_descriptor(const TrafficDescriptor& td) {
  Ie ie;
  ie.id = IeId::kTrafficDescriptor;
  ie.value.resize(8);
  store_be32(ie.value.data(), td.peak_cell_rate);
  store_be32(ie.value.data() + 4, td.sustained_cell_rate);
  return ie;
}

Ie make_cause(Cause cause) {
  Ie ie;
  ie.id = IeId::kCause;
  ie.value.push_back(static_cast<std::uint8_t>(cause));
  return ie;
}

Ie make_number(IeId id, std::span<const std::uint8_t> digits) {
  Ie ie;
  ie.id = id;
  ie.value.assign(digits.begin(), digits.end());
  return ie;
}

std::optional<ConnectionId> parse_connection_id(const Ie& ie) {
  if (ie.id != IeId::kConnectionId || ie.value.size() != 4)
    return std::nullopt;
  ConnectionId cid;
  cid.vpi = load_be16(ie.value.data());
  cid.vci = load_be16(ie.value.data() + 2);
  return cid;
}

std::optional<TrafficDescriptor> parse_traffic_descriptor(const Ie& ie) {
  if (ie.id != IeId::kTrafficDescriptor || ie.value.size() != 8)
    return std::nullopt;
  TrafficDescriptor td;
  td.peak_cell_rate = load_be32(ie.value.data());
  td.sustained_cell_rate = load_be32(ie.value.data() + 4);
  return td;
}

std::optional<Cause> parse_cause(const Ie& ie) {
  if (ie.id != IeId::kCause || ie.value.empty()) return std::nullopt;
  return static_cast<Cause>(ie.value[0]);
}

void encode_ie(const Ie& ie, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(ie.id));
  std::uint8_t len[2];
  store_be16(len, static_cast<std::uint16_t>(ie.value.size()));
  out.insert(out.end(), len, len + 2);
  out.insert(out.end(), ie.value.begin(), ie.value.end());
}

std::optional<Ie> decode_ie(std::span<const std::uint8_t> data,
                            std::size_t& pos) {
  if (pos + 3 > data.size()) return std::nullopt;
  Ie ie;
  ie.id = static_cast<IeId>(data[pos]);
  const std::uint16_t len = load_be16(data.data() + pos + 1);
  pos += 3;
  if (pos + len > data.size()) return std::nullopt;
  ie.value.assign(data.begin() + pos, data.begin() + pos + len);
  pos += len;
  return ie;
}

}  // namespace ldlp::signal
