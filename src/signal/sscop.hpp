// SSCOP-lite: the reliable link under Q.93B signalling.
//
// A trimmed Q.2110: sequenced data PDUs (SD) with cumulative
// acknowledgments (STAT), sender-driven POLL on a timer, and
// retransmission of unacknowledged PDUs. Enough to guarantee in-order,
// loss-free delivery of signalling messages over an unreliable byte pipe,
// and to give the signalling stack a genuine link layer whose code
// footprint matters for LDLP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace ldlp::signal {

enum class PduType : std::uint8_t {
  kSd = 1,    ///< Sequenced data: header + payload.
  kPoll = 2,  ///< Sender asks "what have you got?".
  kStat = 3,  ///< Receiver answers with cumulative next-expected.
};

struct SscopConfig {
  double poll_interval_sec = 0.05;
  double poll_max_sec = 0.4;          ///< POLL backoff ceiling.
  double retransmit_after_sec = 0.2;  ///< Doubles per retransmit of a PDU.
  double retransmit_max_sec = 1.6;    ///< Retransmit backoff ceiling.
  std::size_t window = 256;      ///< Max unacknowledged SDs.
  std::uint32_t stat_every = 8;  ///< Unsolicited STAT after this many
                                 ///< in-order SDs (keeps the sender's
                                 ///< window open without waiting for a
                                 ///< POLL timer).
};

struct SscopStats {
  std::uint64_t sd_sent = 0;
  std::uint64_t sd_received = 0;
  std::uint64_t sd_out_of_order = 0;  ///< Dropped (sender retransmits).
  std::uint64_t retransmits = 0;
  std::uint64_t polls = 0;
  std::uint64_t stats_pdus = 0;
  std::uint64_t delivered = 0;
};

class SscopLink {
 public:
  using TransmitFn = std::function<void(std::vector<std::uint8_t>)>;
  using DeliverFn = std::function<void(std::vector<std::uint8_t>)>;

  explicit SscopLink(SscopConfig config = {}) : cfg_(config) {}

  /// Downward path: how encoded PDUs leave this node.
  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }
  /// Upward path: in-order payloads for the layer above.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Send a message reliably. Returns false when the window is full.
  [[nodiscard]] bool send(std::vector<std::uint8_t> payload, double now_sec);

  /// Feed a received PDU (possibly reordered/dropped by the pipe).
  void on_pdu(std::span<const std::uint8_t> pdu, double now_sec);

  /// Drive poll/retransmit timers.
  void on_timer(double now_sec);

  [[nodiscard]] const SscopStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t unacked() const noexcept { return rtxq_.size(); }

 private:
  struct Unacked {
    std::uint32_t seq;
    std::vector<std::uint8_t> payload;
    double sent_at;
    std::uint32_t rtx_count = 0;  ///< Drives per-PDU backoff.
  };

  void emit_sd(std::uint32_t seq, std::span<const std::uint8_t> payload);
  void emit_stat();

  SscopConfig cfg_;
  TransmitFn transmit_;
  DeliverFn deliver_;
  std::uint32_t vt_s_ = 0;   ///< Next send sequence.
  std::uint32_t vr_r_ = 0;   ///< Next expected receive sequence.
  std::uint32_t vt_a_ = 0;   ///< Oldest unacknowledged.
  std::uint32_t sds_since_stat_ = 0;
  std::deque<Unacked> rtxq_;
  double last_poll_ = 0.0;
  double poll_gap_ = 0.0;  ///< Current POLL interval; backs off while
                           ///< unanswered, resets on any STAT.
  SscopStats stats_;
};

}  // namespace ldlp::signal
