#include "pipe/stage_engine.hpp"

#include <algorithm>
#include <deque>

namespace ldlp::pipe {

namespace {

// Disjoint address planes, as in par::ShardEngine: stage code is shared
// text, stage data is per-stage state, message buffers live in a slot
// ring. The four code planes are 64 KB apart, so in a direct-mapped 8 KB
// i-cache they all fold onto the same index range — a single LDLP core
// cannot keep 16.5 KB of stage code resident, while four per-stage
// contexts keep their own ~3-7 KB each trivially. The slot stride is a
// non-power-of-two multiple of the line size so consecutive in-flight
// messages spread across the d-cache index space.
constexpr std::uint64_t kCodeBase = 0x0100'0000;
constexpr std::uint64_t kCodePlane = 64 * 1024;
constexpr std::uint64_t kDataBase = 0x0800'0000;
constexpr std::uint64_t kMsgBase = 0x4000'0000;
constexpr std::uint64_t kMsgSlotBytes = 2176;
constexpr std::uint64_t kMsgSlots = 64;

[[nodiscard]] std::uint64_t msg_addr(std::size_t msg) noexcept {
  return kMsgBase + 2048 + (msg % kMsgSlots) * kMsgSlotBytes;
}

}  // namespace

std::array<StageModel, kStageCount> default_stage_models() {
  // Figure 1's rx-path code folded into four stages: driver+eth glue into
  // parse, the demux/hash into steer, ip+tcp input into proto, sbappend/
  // sowakeup into socket. Each fits an 8 KB i-cache alone; the sum
  // (16.5 KB) does not.
  return {{
      {3 * 1024, 160, 300},        // parse
      {1536, 256, 120},            // steer
      {7 * 1024, 640, 900},        // proto
      {5 * 1024, 256, 420},        // socket
  }};
}

StageEngineResult StageEngine::run(
    std::span<const traffic::PacketArrival> trace) const {
  StageEngineResult result;
  result.offered = trace.size();
  if (trace.empty()) return result;

  sim::MemorySystem mem(cfg_.memory);
  const bool staged = cfg_.mode != RxMode::kLdlp;
  if (staged) mem.set_context_count(kStageCount);

  // Pack stage data cumulatively so the per-stage tables coexist in one
  // 8 KB d-cache without self-conflict (total ~1.3 KB).
  std::array<std::uint64_t, kStageCount> data_addr{};
  {
    std::uint64_t off = 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      data_addr[s] = kDataBase + off;
      off += cfg_.stages[s].data_bytes;
    }
  }

  // Serve one message at stage `s` on the current context; returns busy
  // cycles (compute + stalls). The message buffer address is shared by
  // every stage — the zero-copy pointer hand-off — so under kLdlp it hits
  // the one d-cache across stages, while each staged context refetches it.
  const auto serve_msg = [&](std::size_t s, std::size_t orig) {
    const StageModel& sm = cfg_.stages[s];
    std::uint64_t c = 0;
    c += mem.access(sim::Access::kIFetch, kCodeBase + s * kCodePlane,
                    sm.code_bytes);
    if (sm.data_bytes != 0)
      c += mem.access(sim::Access::kRead, data_addr[s], sm.data_bytes);
    const std::uint32_t size = trace[orig].size_bytes;
    c += mem.access(s == 0 ? sim::Access::kWrite : sim::Access::kRead,
                    msg_addr(orig), size != 0 ? size : 1);
    c += sm.fixed_cycles +
         static_cast<std::uint64_t>(static_cast<double>(size) *
                                    cfg_.cycles_per_byte) +
         cfg_.queue_cost_cycles;
    return c;
  };

  std::vector<double> latencies;
  latencies.reserve(trace.size());
  const double hz = cfg_.clock_hz;
  double last_departure = 0.0;

  if (!staged) {
    // --- kLdlp: one core drains entry batches through all four stages.
    std::deque<std::size_t> q;
    std::size_t next = 0;
    double clock = 0.0;
    const std::size_t bl =
        cfg_.batch_limit != 0 ? cfg_.batch_limit : SIZE_MAX;
    const auto admit = [&](double upto) {
      while (next < trace.size() && trace[next].time <= upto) {
        if (q.size() >= cfg_.stage_queue_cap) {
          ++result.stages[0].drops;
          ++result.dropped;
        } else {
          q.push_back(next);
        }
        ++next;
      }
    };
    std::vector<std::size_t> batch;
    while (next < trace.size() || !q.empty()) {
      if (q.empty()) {
        clock = std::max(clock, trace[next].time);
        admit(clock);
        continue;
      }
      batch.clear();
      while (!q.empty() && batch.size() < bl) {
        batch.push_back(q.front());
        q.pop_front();
      }
      // One core wakeup per batch; the stage-to-stage transitions are
      // in-core procedure returns, not cross-core hand-offs.
      std::uint64_t cycles = cfg_.activation_cycles;
      result.stages[0].busy_cycles += cfg_.activation_cycles;
      for (std::size_t s = 0; s < kStageCount; ++s) {
        mem.set_scope(static_cast<std::uint32_t>(s));
        ++result.stages[s].activations;
        for (const std::size_t m : batch) {
          const std::uint64_t c = serve_msg(s, m);
          result.stages[s].busy_cycles += c;
          ++result.stages[s].messages;
          cycles += c;
        }
      }
      const double end = clock + static_cast<double>(cycles) / hz;
      admit(end);  // arrivals during service see the growing backlog
      clock = end;
      for (const std::size_t m : batch) {
        latencies.push_back(end - trace[m].time);
        ++result.completed;
      }
      last_departure = end;
    }
  } else {
    // --- kPipelined / kHybrid: open tandem of four single-server stages,
    // evaluated stage at a time (exact: stage s depends only on stage
    // s-1's monotone departure sequence; full queues drop, never block).
    std::vector<double> in_time(trace.size());
    std::vector<std::size_t> in_idx(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      in_time[i] = trace[i].time;
      in_idx[i] = i;
    }
    const std::size_t bl =
        cfg_.mode == RxMode::kPipelined
            ? 1
            : (cfg_.batch_limit != 0 ? cfg_.batch_limit : SIZE_MAX);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      mem.set_context(s);
      mem.set_scope(static_cast<std::uint32_t>(s));
      std::vector<double> out_time;
      std::vector<std::size_t> out_idx;
      out_time.reserve(in_time.size());
      out_idx.reserve(in_time.size());
      std::deque<std::size_t> q;  // positions into in_*
      std::size_t next = 0;
      double clock = 0.0;
      const auto admit = [&](double upto) {
        while (next < in_time.size() && in_time[next] <= upto) {
          if (q.size() >= cfg_.stage_queue_cap) {
            ++result.stages[s].drops;
            ++result.dropped;
          } else {
            q.push_back(next);
          }
          ++next;
        }
      };
      std::vector<std::size_t> batch;
      while (next < in_time.size() || !q.empty()) {
        if (q.empty()) {
          clock = std::max(clock, in_time[next]);
          admit(clock);
          continue;
        }
        batch.clear();
        while (!q.empty() && batch.size() < bl) {
          batch.push_back(q.front());
          q.pop_front();
        }
        std::uint64_t cycles = cfg_.activation_cycles;
        result.stages[s].busy_cycles += cfg_.activation_cycles;
        ++result.stages[s].activations;
        for (const std::size_t pos : batch) {
          const std::uint64_t c = serve_msg(s, in_idx[pos]);
          result.stages[s].busy_cycles += c;
          ++result.stages[s].messages;
          cycles += c;
        }
        const double end = clock + static_cast<double>(cycles) / hz;
        admit(end);
        clock = end;
        for (const std::size_t pos : batch) {
          out_time.push_back(end);
          out_idx.push_back(in_idx[pos]);
        }
      }
      in_time = std::move(out_time);
      in_idx = std::move(out_idx);
    }
    result.completed = in_time.size();
    for (std::size_t i = 0; i < in_time.size(); ++i) {
      latencies.push_back(in_time[i] - trace[in_idx[i]].time);
      last_departure = std::max(last_departure, in_time[i]);
    }
  }

  // Scope-attributed misses (summed over contexts by construction).
  const auto& scopes = mem.scope_misses();
  std::uint64_t i_total = 0;
  std::uint64_t d_total = 0;
  for (std::size_t s = 0; s < kStageCount && s < scopes.size(); ++s) {
    result.stages[s].i_misses = scopes[s].i_misses;
    result.stages[s].d_misses = scopes[s].d_misses;
    i_total += scopes[s].i_misses;
    d_total += scopes[s].d_misses;
  }
  if (result.completed != 0) {
    const double msgs = static_cast<double>(result.completed);
    result.i_miss_per_msg = static_cast<double>(i_total) / msgs;
    result.d_miss_per_msg = static_cast<double>(d_total) / msgs;
  }
  std::uint64_t activations = 0;
  std::uint64_t stage_msgs = 0;
  for (const StageBreakdown& sb : result.stages) {
    activations += sb.activations;
    stage_msgs += sb.messages;
  }
  if (activations != 0)
    result.mean_batch =
        static_cast<double>(stage_msgs) / static_cast<double>(activations);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    result.mean_latency_sec = sum / static_cast<double>(latencies.size());
    result.p50_latency_sec = latencies[latencies.size() / 2];
    result.p99_latency_sec =
        latencies[std::min(latencies.size() - 1,
                           static_cast<std::size_t>(
                               static_cast<double>(latencies.size()) * 0.99))];
  }
  result.span_sec = last_departure - trace.front().time;
  return result;
}

}  // namespace ldlp::pipe
