#include "pipe/pipeline.hpp"

#include <array>
#include <string>

#include "common/assert.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define LDLP_PIPE_PREFETCH(p) __builtin_prefetch(p)
#else
#define LDLP_PIPE_PREFETCH(p) ((void)(p))
#endif

namespace ldlp::pipe {

const char* rx_mode_name(RxMode mode) noexcept {
  switch (mode) {
    case RxMode::kLdlp: return "ldlp";
    case RxMode::kPipelined: return "pipelined";
    case RxMode::kHybrid: return "hybrid";
  }
  return "?";
}

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kSteer: return "steer";
    case Stage::kProto: return "proto";
    case Stage::kSocket: return "socket";
  }
  return "?";
}

StagedRx::StagedRx(stack::Host& host, PipelineConfig cfg)
    : host_(host),
      cfg_(cfg),
      hash_(cfg.symmetric, cfg.hash_seed),
      parse_q_(cfg.stage_queue_cap),
      steer_q_(cfg.stage_queue_cap),
      sock_base_(host.sockets().stats()) {
  LDLP_ASSERT_MSG(host_.graph().mode() == core::SchedMode::kLdlp,
                  "StagedRx schedules the graph itself; host must be kLdlp");
  if (cfg_.lanes == 0) cfg_.lanes = 1;
  for (std::size_t lane = 0; lane < cfg_.lanes; ++lane)
    proto_q_.emplace_back(cfg_.stage_queue_cap);
}

bool StagedRx::offer(StageCounters& c, buf::PacketQueue& q, buf::Packet pkt) {
  ++c.offered;
  if (q.push(std::move(pkt))) {
    ++c.enqueued;
    if (q.size() > c.high_water) c.high_water = q.size();
    return true;
  }
  ++c.drops;
  return false;
}

std::uint32_t StagedRx::classify_hash(const buf::Packet& pkt) const {
  const buf::Mbuf* head = pkt.head();
  if (head == nullptr) return 0;
  std::optional<stack::FlowKey> key;
  if (head->next() == nullptr) {
    key = stack::FlowHash::classify(head->bytes());
  } else {
    // Headers straddle mbufs (tiny clusters in stress tests): classify
    // from a bounded copy of the front — eth + max IP header + ports.
    std::array<std::uint8_t, 94> hdr{};
    const std::uint32_t want =
        std::min<std::uint32_t>(pkt.length(),
                                static_cast<std::uint32_t>(hdr.size()));
    if (!pkt.copy_out(0, {hdr.data(), want})) return 0;
    key = stack::FlowHash::classify({hdr.data(), want});
  }
  return key.has_value() ? hash_(*key) : 0;
}

void StagedRx::run_parse(std::size_t limit, par::WorkerPool* pool) {
  if (parse_q_.empty()) return;
  ++parse_.activations;
  std::vector<buf::Packet> batch;
  while (batch.size() < limit && !parse_q_.empty())
    batch.push_back(parse_q_.pop());
  parse_.handed_off += batch.size();
  std::vector<std::uint32_t> hashes(batch.size(), 0);
  if (pool != nullptr && pool->workers() > 1 && batch.size() > 1) {
    // Frame-indexed slots: bit-identical for any --jobs.
    pool->run(batch.size(), [&](std::size_t i, par::WorkerContext&) {
      hashes[i] = classify_hash(batch[i]);
    });
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (cfg_.prefetch && i + 1 < batch.size()) {
        const buf::Mbuf* next_head = batch[i + 1].head();
        if (next_head != nullptr) LDLP_PIPE_PREFETCH(next_head->data());
      }
      hashes[i] = classify_hash(batch[i]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (offer(steer_, steer_q_, std::move(batch[i])))
      steer_meta_.push_back(hashes[i]);
  }
}

void StagedRx::run_steer() {
  if (steer_q_.empty()) return;
  ++steer_.activations;
  while (!steer_q_.empty()) {
    buf::Packet frame = steer_q_.pop();
    LDLP_DASSERT(!steer_meta_.empty());
    const std::uint32_t hash = steer_meta_.front();
    steer_meta_.pop_front();
    ++steer_.handed_off;
    (void)offer(proto_, proto_q_[hash % cfg_.lanes], std::move(frame));
  }
}

void StagedRx::run_proto() {
  for (std::size_t lane = 0; lane < proto_q_.size(); ++lane) {
    buf::PacketQueue& q = proto_q_[lane];
    if (q.empty()) continue;
    ++proto_.activations;
    while (!q.empty()) {
      if (cfg_.prefetch) {
        const buf::Mbuf* next = q.peek_head()->nextpkt();
        if (next != nullptr) LDLP_PIPE_PREFETCH(next->data());
      }
      buf::Packet frame = q.pop();
      ++proto_.handed_off;
      host_.inject_rx(std::move(frame));
    }
    if (cfg_.mode == RxMode::kHybrid) {
      // Per-layer hand-off: every pass advances the lane's batch exactly
      // one layer, the graph-level picture of a stage pipeline.
      while (host_.graph().run_stage_pass() != 0) {
      }
    } else {
      // kLdlp: classic layer-blocked drain of the lane's whole batch.
      // kPipelined reaches here with exactly one frame queued, so the
      // same call degenerates to a batch of one.
      (void)host_.graph().run();
    }
  }
}

std::size_t StagedRx::pump(std::size_t max_frames, par::WorkerPool* pool) {
  host_.device().poll();
  std::size_t pulled = 0;
  for (std::size_t q = 0; q < host_.device().rx_queue_count(); ++q) {
    while (pulled < max_frames) {
      buf::Packet frame = host_.pull_frame(q);
      if (!frame) break;
      (void)offer(parse_, parse_q_, std::move(frame));
      ++pulled;
    }
  }
  std::size_t sub = SIZE_MAX;
  if (cfg_.mode == RxMode::kPipelined) {
    sub = 1;
  } else if (cfg_.mode == RxMode::kHybrid && cfg_.batch_limit != 0) {
    sub = cfg_.batch_limit;
  }
  while (!parse_q_.empty()) {
    run_parse(sub, pool);
    run_steer();
    run_proto();
  }
  if (pulled > 0) host_.run_post_pass();
  return pulled;
}

StageCounters StagedRx::counters(Stage stage) const {
  switch (stage) {
    case Stage::kParse: {
      StageCounters c = parse_;
      c.queue_len = parse_q_.size();
      return c;
    }
    case Stage::kSteer: {
      StageCounters c = steer_;
      c.queue_len = steer_q_.size();
      return c;
    }
    case Stage::kProto: {
      StageCounters c = proto_;
      for (const buf::PacketQueue& q : proto_q_) c.queue_len += q.size();
      return c;
    }
    case Stage::kSocket: {
      // The socket stage's queue lives inside the graph; surface its
      // LayerStats delta since this pipeline attached.
      const core::LayerStats& s = host_.sockets().stats();
      StageCounters c;
      c.offered = s.enqueued - sock_base_.enqueued;
      c.enqueued = c.offered - (s.drops - sock_base_.drops);
      c.handed_off = s.processed - sock_base_.processed;
      c.drops = s.drops - sock_base_.drops;
      c.activations = s.activations - sock_base_.activations;
      c.queue_len = host_.sockets().queue_len();
      c.high_water = s.max_queue;
      return c;
    }
  }
  return {};
}

std::vector<std::string> StagedRx::audit() const {
  std::vector<std::string> violations;
  const auto check_conservation = [&](Stage stage) {
    const StageCounters c = counters(stage);
    if (c.offered != c.enqueued + c.drops)
      violations.push_back(std::string("pipe.") + stage_name(stage) +
                           ": offered != enqueued + drops");
    if (c.enqueued != c.handed_off + c.queue_len)
      violations.push_back(std::string("pipe.") + stage_name(stage) +
                           ": enqueued != handed_off + queue_len");
  };
  check_conservation(Stage::kParse);
  check_conservation(Stage::kSteer);
  check_conservation(Stage::kProto);
  if (steer_meta_.size() != steer_q_.size())
    violations.push_back("pipe.steer: metadata out of sync with queue");

  // Zero-copy mbuf ownership: every chain parked at a stage boundary must
  // be owned by this host's pool (pointer hand-off can never manufacture
  // a chain, copy one, or adopt a foreign pool's).
  buf::MbufPool* pool = &host_.pool();
  const auto check_queue = [&](const char* name, const buf::PacketQueue& q) {
    std::size_t chains = 0;
    for (const buf::Mbuf* m = q.peek_head(); m != nullptr; m = m->nextpkt()) {
      if (++chains > q.size()) {
        violations.push_back(std::string("pipe.") + name +
                             ": intrusive ring longer than size()");
        return;
      }
      for (const buf::Mbuf* seg = m; seg != nullptr; seg = seg->next()) {
        if (seg->pool() != pool) {
          violations.push_back(std::string("pipe.") + name +
                               ": queued mbuf not owned by the host pool");
          return;
        }
      }
    }
    if (chains != q.size())
      violations.push_back(std::string("pipe.") + name +
                           ": chain count != size()");
  };
  check_queue("parse", parse_q_);
  check_queue("steer", steer_q_);
  for (std::size_t lane = 0; lane < proto_q_.size(); ++lane)
    check_queue("proto", proto_q_[lane]);
  return violations;
}

void StagedRx::publish(obs::Registry& registry,
                       std::string_view prefix) const {
  const std::string p(prefix);
  const auto stage = [&](Stage s) {
    const StageCounters c = counters(s);
    const std::string base = p + "." + stage_name(s);
    registry.counter(base + ".offered").set(c.offered);
    registry.counter(base + ".enqueued").set(c.enqueued);
    registry.counter(base + ".handed_off").set(c.handed_off);
    registry.counter(base + ".drops").set(c.drops);
    registry.counter(base + ".activations").set(c.activations);
    registry.gauge(base + ".queue_len")
        .set(static_cast<double>(c.queue_len));
    registry.gauge(base + ".high_water")
        .set(static_cast<double>(c.high_water));
  };
  stage(Stage::kParse);
  stage(Stage::kSteer);
  stage(Stage::kProto);
  stage(Stage::kSocket);
  registry.gauge(p + ".lanes").set(static_cast<double>(cfg_.lanes));
  registry.counter(p + ".mode").set(static_cast<std::uint64_t>(cfg_.mode));
}

}  // namespace ldlp::pipe
