// StageEngine: the batching-vs-pipelining head-to-head on the simulated
// machine (the paper's 8 KB direct-mapped primary caches, 20-cycle miss).
//
// Models the staged receive path of pipeline.hpp — parse -> steer ->
// proto -> socket — under the three schedules, with the cache geometry
// doing the arguing:
//
//  * kLdlp      — one core, one cache context. Arrivals queue at entry;
//                 the core drains batches (up to batch_limit) through all
//                 four stages, one stage at a time over the whole batch.
//                 The four stages' code (~16.5 KB) exceeds the 8 KB
//                 i-cache, so every batch refetches it — once per *batch*,
//                 which is the paper's amortisation. The message stays in
//                 the single d-cache across all four stages.
//  * kPipelined — four cores, one private cache context per stage (PR 6's
//                 set_context_count), per-message hand-off. Each stage's
//                 code fits its own 8 KB i-cache, so steady-state i-miss
//                 is ~0 — FlexTOE's bet. The price: each message's buffer
//                 is fetched into *four* d-caches, plus a per-message
//                 stage activation and queue hand-off cost.
//  * kHybrid    — four contexts, but each stage drains an LDLP batch, so
//                 activation and hand-off costs amortise while the
//                 per-stage i-cache residency is kept.
//
// Per-stage attribution uses MemorySystem::set_scope, so the per-stage
// i/d split is available in every mode (including the single-context LDLP
// core). Bounded stage queues drop deterministically when full. The whole
// engine is a pure function of (config, trace): two runs agree bit for
// bit, which is what lets gate_pipeline pin the separation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "pipe/pipeline.hpp"
#include "sim/memory_system.hpp"
#include "traffic/arrivals.hpp"

namespace ldlp::pipe {

/// Code/data/compute footprint of one stage. Defaults are anchored to the
/// paper's Figure 1 layer sizes, folded into four stages such that each
/// fits the 8 KB i-cache alone but the sum does not.
struct StageModel {
  std::uint32_t code_bytes = 0;
  std::uint32_t data_bytes = 0;    ///< Per-stage state touched per message.
  std::uint32_t fixed_cycles = 0;  ///< Compute per message (ex. byte loop).
};

[[nodiscard]] std::array<StageModel, kStageCount> default_stage_models();

struct StageEngineConfig {
  RxMode mode = RxMode::kLdlp;
  std::array<StageModel, kStageCount> stages = default_stage_models();
  /// Cycles to move one message across one stage boundary (enqueue +
  /// dequeue on the bounded queue; the paper's §3.2 queue tax).
  std::uint32_t queue_cost_cycles = 40;
  /// Cycles to wake a stage for a burst (cross-core doorbell + schedule).
  /// kPipelined pays it per message per stage; kLdlp once per batch;
  /// kHybrid once per stage batch.
  std::uint32_t activation_cycles = 250;
  std::size_t stage_queue_cap = 512;
  /// Batch bound for kLdlp entry / kHybrid stages (0 = all queued).
  std::uint32_t batch_limit = 16;
  /// Per-byte touch cost of the payload loop (checksum + copy).
  double cycles_per_byte = 0.5;
  sim::MemoryConfig memory{};  ///< Per-context primary geometry.
  double clock_hz = 100e6;
};

struct StageBreakdown {
  std::uint64_t messages = 0;
  std::uint64_t activations = 0;
  std::uint64_t i_misses = 0;  ///< Scope-attributed, summed over contexts.
  std::uint64_t d_misses = 0;
  std::uint64_t drops = 0;     ///< Refused at this stage's bounded queue.
  std::uint64_t busy_cycles = 0;
};

struct StageEngineResult {
  std::array<StageBreakdown, kStageCount> stages{};
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;  ///< Left the socket stage.
  std::uint64_t dropped = 0;
  double i_miss_per_msg = 0.0;  ///< All stages, per completed message.
  double d_miss_per_msg = 0.0;
  double mean_latency_sec = 0.0;  ///< Arrival -> socket departure.
  double p50_latency_sec = 0.0;
  double p99_latency_sec = 0.0;
  double mean_batch = 0.0;  ///< Messages per stage activation.
  double span_sec = 0.0;    ///< First arrival -> last departure.
};

class StageEngine {
 public:
  explicit StageEngine(StageEngineConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const StageEngineConfig& config() const noexcept {
    return cfg_;
  }

  /// Run the arrival trace (time-sorted) through the staged path.
  [[nodiscard]] StageEngineResult run(
      std::span<const traffic::PacketArrival> trace) const;

 private:
  StageEngineConfig cfg_;
};

}  // namespace ldlp::pipe
