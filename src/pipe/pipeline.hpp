// ldlp::pipe — an explicit staged receive path: parse -> steer -> proto
// -> socket, the FlexTOE-style counterpoint to LDLP's layer batching.
//
// Each stage owns a bounded queue built on the intrusive m_nextpkt
// PacketQueue, and frames move between stages by pointer hand-off only —
// the mbuf chain allocated at the device interrupt is the one the socket
// layer appends, zero copies at any boundary (HostAuditor can verify: the
// stage queues hold chains owned by the host pool, one chain per queued
// frame). The stage bodies are carved out of stack::Host's rx path:
//
//   parse  — Host::pull_frame (device interrupt + mbuf copy-in), then
//            header classification via stack::FlowHash::classify. The
//            per-frame classification is data-parallel and runs on a
//            par::WorkerPool when one is supplied, writing into
//            frame-indexed slots so the result is bit-identical for any
//            --jobs (the determinism rule of ldlp::par).
//   steer  — pins the frame's flow to one proto/socket lane with the
//            Toeplitz hash (lane = hash % lanes), so frames of one flow
//            never reorder across stages: lanes are FIFO and drained in
//            lane order.
//   proto  — injects the lane's frames into the host's StackGraph
//            (eth -> ip -> tcp/udp), whose schedule depends on the mode.
//   socket — the graph's socket layer; its LayerStats are surfaced as
//            this stage's counters.
//
// One PipelineConfig runs the same code three ways:
//
//   kLdlp      — today's layer-blocked batching: each lane's backlog is
//                injected whole and StackGraph::run() drains layer by
//                layer (i-cache amortisation within the batch).
//   kPipelined — per-stage hand-off with no batching anywhere: one frame
//                moves parse -> steer -> proto -> socket before the next
//                frame is touched (batch of one at every stage).
//   kHybrid    — pipelined stages, each draining an LDLP batch: parse
//                pops batch_limit frames, hands them to steer, and the
//                graph advances them one *layer* per run_stage_pass().
//
// All three deliver per-flow FIFO, so an end-to-end TCP transfer is
// byte-identical across modes — which is what tests/test_pipe.cpp pins.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "buf/packet_queue.hpp"
#include "obs/metrics.hpp"
#include "par/worker_pool.hpp"
#include "stack/host.hpp"

namespace ldlp::pipe {

enum class RxMode : std::uint8_t { kLdlp, kPipelined, kHybrid };

[[nodiscard]] const char* rx_mode_name(RxMode mode) noexcept;

enum class Stage : std::uint8_t { kParse = 0, kSteer = 1, kProto = 2,
                                  kSocket = 3 };
inline constexpr std::size_t kStageCount = 4;

[[nodiscard]] const char* stage_name(Stage stage) noexcept;

struct PipelineConfig {
  RxMode mode = RxMode::kLdlp;
  /// Proto/socket lanes; a flow is pinned to lane hash % lanes for life.
  std::size_t lanes = 1;
  /// Bound on every stage queue; a full queue drops (never blocks).
  std::size_t stage_queue_cap = 512;
  /// kHybrid: frames per stage batch (0 = whatever is queued). Ignored by
  /// kLdlp (whole backlog) and kPipelined (always 1).
  std::size_t batch_limit = 0;
  /// Prefetch the next frame's header at the top of the stage loops.
  bool prefetch = false;
  /// Symmetric flow hash (co-steer both directions onto one lane).
  bool symmetric = false;
  std::uint64_t hash_seed = stack::FlowHash::kDefaultKeySeed;
};

/// Per-stage accounting. Conservation (audited):
///   offered == enqueued + drops;  enqueued == handed_off + queue_len.
struct StageCounters {
  std::uint64_t offered = 0;    ///< Frames presented to the stage queue.
  std::uint64_t enqueued = 0;   ///< Accepted by the bounded queue.
  std::uint64_t handed_off = 0; ///< Left the stage toward the next one.
  std::uint64_t drops = 0;      ///< Refused by the bounded queue.
  std::uint64_t activations = 0;///< Times the stage started draining.
  std::size_t queue_len = 0;    ///< Live queue length at snapshot time.
  std::size_t high_water = 0;
};

class StagedRx {
 public:
  /// The host must be in SchedMode::kLdlp — the staged path schedules the
  /// graph itself (run() or run_stage_pass()), which needs queued layers.
  StagedRx(stack::Host& host, PipelineConfig cfg);

  StagedRx(const StagedRx&) = delete;
  StagedRx& operator=(const StagedRx&) = delete;

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }

  /// One scheduler pass: poll the device, pull up to `max_frames` into the
  /// parse stage, then sweep the stages under the configured mode until
  /// every stage queue is dry. Runs the host post-pass hook when frames
  /// were handled, exactly like Host::pump(). `pool` (optional) fans the
  /// parse stage's classification out over the WorkerPool. Returns frames
  /// pulled from the device.
  std::size_t pump(std::size_t max_frames = SIZE_MAX,
                   par::WorkerPool* pool = nullptr);

  /// Snapshot of one stage's counters (socket reads the graph's layer).
  [[nodiscard]] StageCounters counters(Stage stage) const;

  /// Frames currently queued in one proto lane.
  [[nodiscard]] std::size_t lane_queue_len(std::size_t lane) const {
    return proto_q_[lane].size();
  }

  /// Stage-queue invariants: counter conservation per stage, steer
  /// metadata sync, and mbuf ownership — every chain queued at a stage
  /// boundary is owned by this host's pool (zero-copy hand-off means no
  /// foreign or copied chains can appear). Returns violations (empty =
  /// clean); hang it on a check::HostAuditor via add_audit().
  [[nodiscard]] std::vector<std::string> audit() const;

  /// Mirror the per-stage counters into `registry` as <prefix>.* —
  /// pipe.parse.offered, pipe.proto.drops, pipe.socket.handed_off, ...
  void publish(obs::Registry& registry,
               std::string_view prefix = "pipe") const;

 private:
  [[nodiscard]] bool offer(StageCounters& c, buf::PacketQueue& q,
                           buf::Packet pkt);
  [[nodiscard]] std::uint32_t classify_hash(const buf::Packet& pkt) const;
  void run_parse(std::size_t limit, par::WorkerPool* pool);
  void run_steer();
  void run_proto();

  stack::Host& host_;
  PipelineConfig cfg_;
  stack::FlowHash hash_;
  buf::PacketQueue parse_q_;
  buf::PacketQueue steer_q_;
  /// Flow hash of each frame in steer_q_, same order (parse computes it
  /// once; steer only folds it onto a lane).
  std::deque<std::uint32_t> steer_meta_;
  /// One bounded queue per lane (deque: PacketQueue is pinned in place).
  std::deque<buf::PacketQueue> proto_q_;
  StageCounters parse_;
  StageCounters steer_;
  StageCounters proto_;
  core::LayerStats sock_base_;  ///< Socket-layer stats at construction.
};

}  // namespace ldlp::pipe
