#include "check/overlay_audit.hpp"

#include <algorithm>

namespace ldlp::check {
namespace {

constexpr std::size_t kMaxViolations = 64;

[[nodiscard]] bool contains(std::span<const std::uint32_t> ids,
                            std::uint32_t id) noexcept {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

[[nodiscard]] std::string at(double now_sec) {
  return " t=" + std::to_string(now_sec);
}

}  // namespace

void ViewAuditor::violation(std::string what) {
  ++stats_.violations;
  if (violations_.size() < kMaxViolations)
    violations_.push_back(std::move(what));
}

void ViewAuditor::audit_one(const OverlayView& view, double now_sec) {
  ++stats_.views_checked;
  const std::string who =
      "node " + std::to_string(view.self) + at(now_sec) + ": ";

  if (contains(view.active, view.self))
    violation(who + "self in active view");
  if (contains(view.passive, view.self))
    violation(who + "self in passive view");
  if (view.active.size() > view.active_max)
    violation(who + "active degree " + std::to_string(view.active.size()) +
              " exceeds bound " + std::to_string(view.active_max));
  if (view.passive.size() > view.passive_max)
    violation(who + "passive size " + std::to_string(view.passive.size()) +
              " exceeds bound " + std::to_string(view.passive_max));
  for (const std::uint32_t id : view.active) {
    if (contains(view.passive, id))
      violation(who + "peer " + std::to_string(id) +
                " in both active and passive");
    if (std::count(view.active.begin(), view.active.end(), id) > 1)
      violation(who + "peer " + std::to_string(id) +
                " duplicated in active view");
  }
  // eager/lazy must partition the active view: every eager peer is
  // active (the lazy set is implicit — active minus eager — so only the
  // subset direction can break).
  for (const std::uint32_t id : view.eager) {
    if (!contains(view.active, id))
      violation(who + "eager peer " + std::to_string(id) +
                " not in active view");
    if (std::count(view.eager.begin(), view.eager.end(), id) > 1)
      violation(who + "peer " + std::to_string(id) +
                " duplicated in eager set");
  }
}

void ViewAuditor::audit(std::span<const OverlayView> views, double now_sec) {
  ++stats_.passes;
  for (const OverlayView& view : views) {
    if (!view.live) continue;
    audit_one(view, now_sec);
  }
}

void ViewAuditor::final_audit(std::span<const OverlayView> views,
                              double now_sec) {
  audit(views, now_sec);
  // Link symmetry across the live fleet: a in b.active => b in a.active.
  for (const OverlayView& a : views) {
    if (!a.live) continue;
    for (const std::uint32_t peer : a.active) {
      for (const OverlayView& b : views) {
        if (b.self != peer || !b.live) continue;
        if (!contains(b.active, a.self))
          violation("asymmetric link" + at(now_sec) + ": " +
                    std::to_string(a.self) + " has " + std::to_string(peer) +
                    " active but not vice versa");
      }
    }
  }
}

void ViewAuditor::publish(obs::Registry& registry,
                          std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".passes").set(stats_.passes);
  registry.counter(p + ".views_checked").set(stats_.views_checked);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::check
