// Timer-wheel invariants, checked per pass and once at teardown.
//
// The HostAuditor condemns bad protocol state (crossed sequence pointers,
// a retransmit deadline with nothing in flight); the TimerAuditor
// condemns bad *wheel* state — the places where the PR-10 migration from
// per-pass scans to wheel-driven timers could silently rot:
//
//   * rtx armed iff asserted wheel-side — a PCB with data in flight must
//     have its consolidated wheel timer armed no later than its
//     rtx_deadline, or the retransmit would simply never fire (the scan
//     would have caught it; the wheel only fires what is armed);
//   * monotone clocks — a host's virtual clock (Host::now) and fabric
//     clock (Host::real_now) never move backwards, even while kClockSkew
//     / kClockStall episodes bend the virtual one;
//   * no leaked armed timers after teardown — once the harness has torn
//     down every endpoint (DNS resolvers, RPC clients, overlay nodes) and
//     reset every connection, whatever is still armed must be accounted
//     for by a live PCB's consolidated timer or the ARP retry timer.
//     Anything else is a wakeup some destroyed object forgot to cancel —
//     a use-after-free waiting for the fire.
//
// Drive run() from the fabric pass hook (it does not take the host's
// post-pass hook, which belongs to the HostAuditor) and final_audit()
// after teardown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stack/host.hpp"

namespace ldlp::check {

struct TimerAuditorStats {
  std::uint64_t passes = 0;
  std::uint64_t timers_checked = 0;  ///< Armed PCB timers reconciled.
  std::uint64_t violations = 0;
};

class TimerAuditor {
 public:
  explicit TimerAuditor(stack::Host& host, std::string label = {});

  /// One sweep: clock monotonicity + per-PCB wheel reconciliation.
  void run();

  /// Teardown check: every armed timer is a live PCB's consolidated
  /// timer or the ARP retry timer; anything else leaked.
  void final_audit();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const TimerAuditorStats& stats() const noexcept {
    return stats_;
  }

 private:
  void violation(const std::string& what);

  stack::Host& host_;
  std::string label_;
  double last_virtual_ = 0.0;
  double last_real_ = 0.0;
  std::vector<std::string> violations_;
  TimerAuditorStats stats_;
};

}  // namespace ldlp::check
