// Broadcast delivery oracle: the dissemination layer's end-to-end
// contract, judged the same way DeliveryOracle judges transports.
//
// Ground truth is the send side: broadcast(origin, seq, payload) records
// exactly what an application handed to the overlay. The receive side is
// the overlay's deliver hook on every node: delivered(node, origin, seq,
// payload) checks each delivery against the truth. The contract — for
// members that stay live and connected — is *exactly-once, byte-exact*
// per (origin, seq): no phantom messages, no corrupted payloads, no
// double delivery, and at finalize() no member missing any message.
//
// Churn makes "every member" subtle: a host that crashes mid-run loses
// its delivered-set along with the rest of its state, so a rebroadcast
// reaching the reborn incarnation is legal (it never saw the first
// copy), and a message that raced its crash may be missing forever.
// mark_unstable(node) excuses such nodes from both the exactly-once and
// the completeness demands; everyone else is held to the full contract.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ldlp::check {

struct BroadcastStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t unstable_deliveries = 0;  ///< Excused (churned node).
  std::uint64_t violations = 0;
};

class BroadcastDeliveryOracle {
 public:
  /// Send-side ground truth: `origin` broadcast message `seq` with
  /// `payload`. Call once per broadcast, before any node can deliver it.
  void broadcast(std::uint32_t origin, std::uint32_t seq,
                 std::span<const std::uint8_t> payload);

  /// Receive-side: `node` delivered (origin, seq) with `payload`.
  void delivered(std::uint32_t node, std::uint32_t origin, std::uint32_t seq,
                 std::span<const std::uint8_t> payload);

  /// Excuse `node` from the exactly-once and completeness demands — its
  /// host crashed (or churned) mid-run, wiping its delivered-set.
  void mark_unstable(std::uint32_t node);

  /// End-of-run completeness: every stable member in `members` must have
  /// delivered every broadcast message. Returns ok().
  bool finalize(std::span<const std::uint32_t> members);

  /// (delivered(node, ·) for all broadcasts)? Lets the harness drain the
  /// sim until completeness instead of guessing a fixed horizon.
  [[nodiscard]] bool complete(std::uint32_t node) const;

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const BroadcastStats& stats() const noexcept { return stats_; }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "check.broadcast") const;

 private:
  struct Message {
    std::vector<std::uint8_t> payload;
    std::set<std::uint32_t> delivered_to;
  };

  [[nodiscard]] static std::uint64_t key(std::uint32_t origin,
                                         std::uint32_t seq) noexcept {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
  void violation(std::string what);

  std::map<std::uint64_t, Message> messages_;  ///< Ordered for finalize().
  std::set<std::uint32_t> unstable_;
  std::vector<std::string> violations_;
  BroadcastStats stats_;
};

}  // namespace ldlp::check
