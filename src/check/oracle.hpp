// ldlp::check — end-to-end conformance oracles.
//
// A DeliveryOracle is a wire-tap pair: the send side records every byte an
// application hands to tcp_send/udp_send on one host (ground truth), the
// receive side watches the peer's socket layer (stack::SocketTap) and
// checks each delivery against that truth. The properties asserted are the
// transport contracts themselves, independent of scheduling mode or of any
// adversity the fault injector applies in between:
//
//   * stream flows (TCP): exactly-once, in-order, byte-exact delivery —
//     the concatenation of sbappend'ed bytes is a prefix of the
//     concatenation of sent bytes, and finalize() demands the prefix be
//     the whole thing;
//   * datagram flows (UDP): at-most-once, integral-datagram delivery —
//     every datagram handed up matches one sent payload byte-for-byte,
//     and no payload is delivered more times than it was sent (unless the
//     wire legitimately duplicates, see set_allow_duplicates()).
//
// Oracles never repair anything: a violation is recorded with a
// diagnostic and the run is condemned. The chaos harness then serialises
// the fault schedule that produced it and hands it to the shrinker.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "stack/socket_layer.hpp"

namespace ldlp::check {

struct OracleStats {
  std::uint64_t stream_bytes_sent = 0;
  std::uint64_t stream_bytes_delivered = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagram_duplicates = 0;  ///< Allowed re-deliveries seen.
  std::uint64_t violations = 0;
};

class DeliveryOracle final : public stack::SocketTap {
 public:
  using FlowId = std::uint32_t;

  /// Open a unidirectional flow. `label` names it in diagnostics
  /// (e.g. "a->b" or "dns.query").
  [[nodiscard]] FlowId open_stream(std::string label);
  [[nodiscard]] FlowId open_datagram(std::string label);

  /// Send-side ground truth: call from the sender's TcpLayer/UdpLayer
  /// send tap with exactly the bytes the application handed down.
  void stream_sent(FlowId flow, std::span<const std::uint8_t> bytes);
  void datagram_sent(FlowId flow, std::span<const std::uint8_t> payload);

  /// Receive-side binding: deliveries on `socket` (of the host whose
  /// SocketLayer this oracle is tapping) belong to `flow`. Unbound
  /// sockets are ignored — hosts carry unrelated traffic too.
  void bind_stream_rx(FlowId flow, stack::SocketId socket);
  void bind_datagram_rx(FlowId flow, stack::SocketId socket);

  /// Permit datagram re-delivery (set when the fault plan contains
  /// duplicate episodes — the wire may legally clone frames and UDP
  /// promises nothing about it). Byte-exactness is still enforced.
  void set_allow_duplicates(bool allow) noexcept {
    allow_duplicates_ = allow;
  }

  /// Permit stream flows to end short (set when the fault plan contains
  /// host-restart episodes — a crashed endpoint legitimately truncates
  /// the stream). Every byte that *does* arrive must still be the exact
  /// in-order continuation; only finalize()'s completeness demand is
  /// relaxed.
  void set_allow_truncation(bool allow) noexcept {
    allow_truncation_ = allow;
  }

  // stack::SocketTap
  void on_stream_append(stack::SocketId id,
                        std::span<const std::uint8_t> bytes) override;
  void on_datagram(stack::SocketId id, const stack::Datagram& dgram) override;

  /// End-of-run check: every stream flow must have delivered everything
  /// that was sent (datagram flows are at-most-once, so nothing to add).
  /// Returns ok().
  bool finalize();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const OracleStats& stats() const noexcept { return stats_; }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "check") const;

 private:
  struct StreamFlow {
    std::string label;
    std::vector<std::uint8_t> sent;
    std::size_t delivered = 0;  ///< Bytes of `sent` confirmed at the peer.
    bool poisoned = false;      ///< Stop re-reporting after first mismatch.
  };
  struct DatagramFlow {
    std::string label;
    // Payload -> {times sent, times delivered}. Counting (rather than a
    // sent list with flags) makes identical payloads unambiguous.
    std::map<std::vector<std::uint8_t>, std::pair<std::uint32_t,
                                                  std::uint32_t>>
        payloads;
  };

  void violation(std::string what);

  std::vector<StreamFlow> streams_;
  std::vector<DatagramFlow> datagrams_;
  std::map<stack::SocketId, FlowId> stream_rx_;
  std::map<stack::SocketId, FlowId> datagram_rx_;
  bool allow_duplicates_ = false;
  bool allow_truncation_ = false;
  std::vector<std::string> violations_;
  OracleStats stats_;
};

}  // namespace ldlp::check
