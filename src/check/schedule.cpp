#include "check/schedule.hpp"

#include <fstream>
#include <sstream>

namespace ldlp::check {

namespace {

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

std::size_t Schedule::episode_count() const noexcept {
  std::size_t n = 0;
  for (const InjectorSpec& spec : injectors) n += spec.plan.episodes().size();
  return n;
}

bool Schedule::has_kind(fault::FaultKind kind) const noexcept {
  for (const InjectorSpec& spec : injectors)
    for (const fault::Episode& e : spec.plan.episodes())
      if (e.kind == kind) return true;
  return false;
}

obs::Json Schedule::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::Json(kSchema));
  doc.set("scenario", obs::Json(scenario));
  doc.set("seed", obs::Json(static_cast<std::uint64_t>(seed)));
  obs::Json specs = obs::Json::array();
  for (const InjectorSpec& spec : injectors) {
    obs::Json j = obs::Json::object();
    j.set("host", obs::Json(spec.host));
    j.set("rng_seed", obs::Json(static_cast<std::uint64_t>(spec.rng_seed)));
    obs::Json episodes = obs::Json::array();
    for (const fault::Episode& e : spec.plan.episodes()) {
      obs::Json je = obs::Json::object();
      je.set("kind", obs::Json(fault::fault_kind_name(e.kind)));
      je.set("start", obs::Json(e.start));
      je.set("end", obs::Json(e.end));
      je.set("rate", obs::Json(e.rate));
      je.set("param", obs::Json(static_cast<std::uint64_t>(e.param)));
      je.set("magnitude", obs::Json(e.magnitude));
      // Fabric scope keys are written only when set, so legacy two-host
      // schedules serialise byte-identically to what PR 4 produced.
      if (e.domain != fault::FaultDomain::kNone) {
        je.set("domain", obs::Json(fault::fault_domain_name(e.domain)));
        je.set("domain_index",
               obs::Json(static_cast<std::uint64_t>(e.domain_index)));
        if (e.direction != fault::kDirBoth)
          je.set("direction",
                 obs::Json(static_cast<std::uint64_t>(e.direction)));
      }
      episodes.push_back(std::move(je));
    }
    j.set("episodes", std::move(episodes));
    specs.push_back(std::move(j));
  }
  doc.set("injectors", std::move(specs));
  return doc;
}

std::optional<Schedule> Schedule::from_json(const obs::Json& doc,
                                            std::string* error) {
  if (!doc.is_object()) {
    fail(error, "schedule: document is not an object");
    return std::nullopt;
  }
  const auto schema = doc.string_at("schema");
  if (!schema.has_value() || *schema != kSchema) {
    fail(error, "schedule: missing or unknown schema (want " +
                    std::string(kSchema) + ")");
    return std::nullopt;
  }
  Schedule out;
  out.scenario = doc.string_at("scenario").value_or("");
  out.seed = static_cast<std::uint64_t>(doc.number_at("seed").value_or(0));
  const obs::Json* specs = doc.find("injectors");
  if (specs == nullptr || !specs->is_array()) {
    fail(error, "schedule: missing injectors array");
    return std::nullopt;
  }
  for (const obs::Json& j : specs->items()) {
    InjectorSpec spec;
    spec.host = j.string_at("host").value_or("");
    spec.rng_seed =
        static_cast<std::uint64_t>(j.number_at("rng_seed").value_or(0));
    const obs::Json* episodes = j.find("episodes");
    if (episodes == nullptr || !episodes->is_array()) {
      fail(error, "schedule: injector '" + spec.host +
                      "' missing episodes array");
      return std::nullopt;
    }
    for (const obs::Json& je : episodes->items()) {
      fault::Episode e;
      const auto kind_name = je.string_at("kind");
      const auto kind =
          kind_name.has_value()
              ? fault::fault_kind_from_name(*kind_name)
              : std::nullopt;
      if (!kind.has_value()) {
        fail(error, "schedule: unknown fault kind '" +
                        kind_name.value_or("<missing>") + "'");
        return std::nullopt;
      }
      e.kind = *kind;
      e.start = je.number_at("start").value_or(0.0);
      e.end = je.number_at("end").value_or(0.0);
      e.rate = je.number_at("rate").value_or(1.0);
      e.param =
          static_cast<std::uint32_t>(je.number_at("param").value_or(0));
      e.magnitude = je.number_at("magnitude").value_or(0.0);
      // Absent scope keys mean kNone — old artifacts replay unchanged —
      // and an unknown domain *name* is a hard error (silently treating a
      // rack fault as host-local would replay the wrong adversity).
      if (const auto domain_name = je.string_at("domain");
          domain_name.has_value()) {
        const auto domain = fault::fault_domain_from_name(*domain_name);
        if (!domain.has_value()) {
          fail(error, "schedule: unknown fault domain '" + *domain_name + "'");
          return std::nullopt;
        }
        e.domain = *domain;
        e.domain_index = static_cast<std::uint32_t>(
            je.number_at("domain_index").value_or(0));
        e.direction =
            static_cast<std::uint8_t>(je.number_at("direction").value_or(0));
      }
      spec.plan.add(e);
    }
    out.injectors.push_back(std::move(spec));
  }
  return out;
}

bool Schedule::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump(2) << '\n';
  return static_cast<bool>(out);
}

std::optional<Schedule> Schedule::load(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "schedule: cannot open " + path);
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto doc = obs::Json::parse(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    fail(error, "schedule: " + path + ": " + parse_error);
    return std::nullopt;
  }
  auto schedule = from_json(*doc, error);
  if (!schedule.has_value() && error != nullptr)
    *error = path + ": " + *error;
  return schedule;
}

}  // namespace ldlp::check
