#include "check/invariants.hpp"

#include <cmath>
#include <limits>

#include "stack/tcp_pcb.hpp"
#include "wire/tcp.hpp"

namespace ldlp::check {

HostAuditor::HostAuditor(stack::Host& host, std::string label)
    : host_(host), label_(label.empty() ? host.name() : std::move(label)) {}

void HostAuditor::install() {
  host_.set_post_pass_hook([this] { run(); });
}

void HostAuditor::run() {
  ++stats_.passes;
  audit_tcp();
  audit_reassembly();
  audit_arp();
  for (const auto& audit : extra_audits_)
    for (const std::string& what : audit()) violation(what);
}

void HostAuditor::audit_tcp() {
  using stack::seq_gt;
  using stack::seq_leq;
  using stack::seq_lt;
  using stack::TcpState;

  stack::TcpLayer& tcp = host_.tcp();
  for (std::uint32_t id = 0; id < tcp.pcb_count(); ++id) {
    const stack::TcpPcb& p = tcp.pcb_view(id);
    PcbTrack& track = tracks_[id];
    if (p.state == TcpState::kClosed || p.state == TcpState::kListen) {
      track.valid = false;  // slot free: next tenant re-baselines
      continue;
    }
    ++stats_.pcbs_checked;
    const std::string who =
        label_ + " pcb " + std::to_string(id) + " (" +
        std::string(tcp_state_name(p.state)) + ")";

    // Sequence pointers must never cross: snd_una <= snd_nxt <= snd_max.
    if (!seq_leq(p.snd_una, p.snd_nxt))
      violation(who + ": snd_una " + std::to_string(p.snd_una) +
                " ahead of snd_nxt " + std::to_string(p.snd_nxt));
    if (!seq_leq(p.snd_nxt, p.snd_max))
      violation(who + ": snd_nxt " + std::to_string(p.snd_nxt) +
                " ahead of snd_max " + std::to_string(p.snd_max));

    // Retransmit timer armed exactly when something is in flight.
    const bool armed = std::isfinite(p.rtx_deadline);
    if (armed != !p.rtx.empty())
      violation(who + ": rtx timer " +
                (armed ? "armed with empty rtx queue"
                       : "disarmed with data in flight"));

    // The persist timer is a last-resort probe: it may only be armed when
    // a zero window blocks queued data and nothing is in flight (an ACK
    // of in-flight data would carry the window update instead).
    if (std::isfinite(p.persist_deadline) &&
        (!p.rtx.empty() || p.send_buffer.empty() || p.snd_wnd != 0))
      violation(who + ": persist timer armed outside a zero-window stall" +
                " (rtx=" + std::to_string(p.rtx.size()) +
                " sndbuf=" + std::to_string(p.send_buffer.size()) +
                " snd_wnd=" + std::to_string(p.snd_wnd) + ")");

    // The rtx queue tiles [snd_una, snd_nxt): the oldest segment covers
    // snd_una, consecutive segments are contiguous in sequence space,
    // and the newest ends exactly at snd_nxt.
    if (!p.rtx.empty()) {
      std::uint32_t expect = 0;
      bool first = true;
      for (const stack::RtxSegment& seg : p.rtx) {
        const std::uint32_t space =
            seg.len + ((seg.flags & wire::tcpflags::kSyn) != 0 ? 1 : 0) +
            ((seg.flags & wire::tcpflags::kFin) != 0 ? 1 : 0);
        if (first) {
          if (seq_gt(seg.seq, p.snd_una) ||
              !seq_gt(seg.seq + space, p.snd_una)) {
            violation(who + ": oldest rtx segment [" +
                      std::to_string(seg.seq) + ", +" +
                      std::to_string(space) + ") does not cover snd_una " +
                      std::to_string(p.snd_una));
            break;
          }
          first = false;
        } else if (seg.seq != expect) {
          violation(who + ": rtx queue gap at seq " + std::to_string(expect));
          break;
        }
        expect = seg.seq + space;
      }
      if (!first && expect != p.snd_nxt)
        violation(who + ": rtx queue ends at " + std::to_string(expect) +
                  " but snd_nxt is " + std::to_string(p.snd_nxt));
    }

    // Per-incarnation monotonicity: the receiver never un-receives and
    // the sender never un-acknowledges. A PCB slot is recycled across
    // connections, so the baseline resets when (iss, irs) changes.
    if (track.valid && track.iss == p.iss && track.irs == p.irs) {
      if (seq_lt(p.rcv_nxt, track.rcv_nxt))
        violation(who + ": rcv_nxt moved backwards (" +
                  std::to_string(track.rcv_nxt) + " -> " +
                  std::to_string(p.rcv_nxt) + ")");
      if (seq_lt(p.snd_una, track.snd_una))
        violation(who + ": snd_una moved backwards (" +
                  std::to_string(track.snd_una) + " -> " +
                  std::to_string(p.snd_una) + ")");
    }
    track.valid = true;
    track.iss = p.iss;
    track.irs = p.irs;
    track.rcv_nxt = p.rcv_nxt;
    track.snd_una = p.snd_una;
  }
}

void HostAuditor::audit_reassembly() {
  std::string why;
  if (!host_.ip().reassembly().audit(&why))
    violation(label_ + " reassembly: " + why);
}

void HostAuditor::audit_arp() {
  std::string why;
  if (!host_.eth().arp().audit(&why))
    violation(label_ + " arp: " + why);
}

void HostAuditor::violation(const std::string& what) {
  ++stats_.violations;
  // The simulated time pins which scheduler pass exposed the state.
  violations_.push_back("[t=" + std::to_string(host_.now()) + "] " + what);
}

void HostAuditor::publish(obs::Registry& registry,
                          std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".passes").set(stats_.passes);
  registry.counter(p + ".pcbs_checked").set(stats_.pcbs_checked);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::check
