#include "check/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace ldlp::check {

namespace {

/// (injector index, episode index) — the unit of removal.
using Site = std::pair<std::size_t, std::size_t>;

std::vector<Site> flatten(const Schedule& s) {
  std::vector<Site> sites;
  for (std::size_t i = 0; i < s.injectors.size(); ++i)
    for (std::size_t e = 0; e < s.injectors[i].plan.episodes().size(); ++e)
      sites.emplace_back(i, e);
  return sites;
}

/// Rebuild a schedule keeping only the episodes named in `keep` (which is
/// sorted in flatten order).
Schedule rebuild(const Schedule& base, const std::vector<Site>& keep) {
  Schedule out;
  out.scenario = base.scenario;
  out.seed = base.seed;
  out.injectors.reserve(base.injectors.size());
  for (std::size_t i = 0; i < base.injectors.size(); ++i) {
    InjectorSpec spec;
    spec.host = base.injectors[i].host;
    spec.rng_seed = base.injectors[i].rng_seed;
    for (const Site& site : keep)
      if (site.first == i)
        spec.plan.add(base.injectors[i].plan.episodes()[site.second]);
    out.injectors.push_back(std::move(spec));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const Schedule& failing,
                    const std::function<bool(const Schedule&)>& still_fails,
                    std::size_t max_runs) {
  ShrinkResult result;
  result.episodes_before = failing.episode_count();

  std::vector<Site> kept = flatten(failing);

  // ddmin: remove chunks of size n, halving n when a whole sweep at that
  // granularity fails to shed anything, down to single episodes.
  std::size_t chunk = std::max<std::size_t>(kept.size() / 2, 1);
  while (!kept.empty()) {
    bool removed_any = false;
    for (std::size_t at = 0; at < kept.size() && result.runs < max_runs;) {
      const std::size_t take = std::min(chunk, kept.size() - at);
      std::vector<Site> candidate;
      candidate.reserve(kept.size() - take);
      candidate.insert(candidate.end(), kept.begin(),
                       kept.begin() + static_cast<std::ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       kept.begin() + static_cast<std::ptrdiff_t>(at + take),
                       kept.end());
      ++result.runs;
      if (still_fails(rebuild(failing, candidate))) {
        kept = std::move(candidate);  // chunk was irrelevant; drop it
        removed_any = true;
        // `at` now indexes the element after the removed chunk.
      } else {
        at += take;  // chunk is load-bearing; step past it
      }
    }
    if (result.runs >= max_runs) break;
    if (!removed_any && chunk == 1) {
      result.converged = true;  // 1-minimal: no single episode removable
      break;
    }
    if (!removed_any) chunk = std::max<std::size_t>(chunk / 2, 1);
  }
  if (kept.empty()) result.converged = true;

  result.schedule = rebuild(failing, kept);
  result.episodes_after = result.schedule.episode_count();
  return result;
}

}  // namespace ldlp::check
