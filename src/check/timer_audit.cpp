#include "check/timer_audit.hpp"

#include <cmath>

#include "stack/tcp_pcb.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::check {

TimerAuditor::TimerAuditor(stack::Host& host, std::string label)
    : host_(host), label_(label.empty() ? host.name() : std::move(label)) {}

void TimerAuditor::run() {
  ++stats_.passes;

  // Clocks only move forward. The virtual clock may run fast or slow
  // under kClockSkew / kClockDrift and freeze under kClockStall, but a
  // backwards step would re-fire history and break every deadline bound.
  if (host_.now() < last_virtual_)
    violation(label_ + ": virtual clock moved backwards (" +
              std::to_string(last_virtual_) + " -> " +
              std::to_string(host_.now()) + ")");
  if (host_.real_now() < last_real_)
    violation(label_ + ": fabric clock moved backwards (" +
              std::to_string(last_real_) + " -> " +
              std::to_string(host_.real_now()) + ")");
  last_virtual_ = host_.now();
  last_real_ = host_.real_now();

  // Retransmit armed iff asserted wheel-side: data in flight means the
  // PCB's consolidated timer is armed at or before rtx_deadline. (The
  // HostAuditor already ties finite rtx_deadline to a non-empty rtx
  // queue; this closes the loop to the wheel that actually fires it.)
  const time::TimerWheel& wheel = host_.wheel();
  stack::TcpLayer& tcp = host_.tcp();
  for (std::uint32_t id = 0; id < tcp.pcb_count(); ++id) {
    const stack::TcpPcb& p = tcp.pcb_view(id);
    if (!std::isfinite(p.rtx_deadline)) continue;
    ++stats_.timers_checked;
    const std::string who = label_ + " pcb " + std::to_string(id);
    if (p.wheel_timer == time::kNoTimer) {
      violation(who + ": data in flight but no wheel timer armed");
      continue;
    }
    const double armed_at = wheel.deadline_of(p.wheel_timer);
    if (!std::isfinite(armed_at))
      violation(who + ": wheel handle " + std::to_string(p.wheel_timer) +
                " is stale (rtx_deadline " +
                std::to_string(p.rtx_deadline) + " would never fire)");
    else if (armed_at > p.rtx_deadline)
      violation(who + ": wheel armed at " + std::to_string(armed_at) +
                " after rtx_deadline " + std::to_string(p.rtx_deadline));
  }
}

void TimerAuditor::final_audit() {
  // Account for every legitimately-armed timer; the remainder leaked.
  const time::TimerWheel& wheel = host_.wheel();
  std::size_t accounted = 0;
  stack::TcpLayer& tcp = host_.tcp();
  for (std::uint32_t id = 0; id < tcp.pcb_count(); ++id) {
    const stack::TcpPcb& p = tcp.pcb_view(id);
    if (p.wheel_timer != time::kNoTimer &&
        std::isfinite(wheel.deadline_of(p.wheel_timer)))
      ++accounted;
  }
  if (std::isfinite(host_.eth().arp().next_retry_deadline())) ++accounted;
  if (wheel.armed_count() > accounted)
    violation(label_ + ": " +
              std::to_string(wheel.armed_count() - accounted) +
              " armed timer(s) leaked past teardown (" +
              std::to_string(wheel.armed_count()) + " armed, " +
              std::to_string(accounted) + " accounted for)");
}

void TimerAuditor::violation(const std::string& what) {
  ++stats_.violations;
  violations_.push_back("[t=" + std::to_string(host_.now()) + "] " + what);
}

}  // namespace ldlp::check
