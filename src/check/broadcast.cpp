#include "check/broadcast.hpp"

#include <algorithm>

namespace ldlp::check {
namespace {

constexpr std::size_t kMaxViolations = 64;

[[nodiscard]] std::string msg_name(std::uint64_t key) {
  return "(" + std::to_string(static_cast<std::uint32_t>(key >> 32)) + "," +
         std::to_string(static_cast<std::uint32_t>(key)) + ")";
}

}  // namespace

void BroadcastDeliveryOracle::violation(std::string what) {
  ++stats_.violations;
  if (violations_.size() < kMaxViolations)
    violations_.push_back(std::move(what));
}

void BroadcastDeliveryOracle::broadcast(std::uint32_t origin,
                                        std::uint32_t seq,
                                        std::span<const std::uint8_t> payload) {
  ++stats_.broadcasts;
  const std::uint64_t k = key(origin, seq);
  auto [it, fresh] = messages_.try_emplace(k);
  if (!fresh) {
    violation("origin " + std::to_string(origin) + " reused seq " +
              std::to_string(seq));
    return;
  }
  it->second.payload.assign(payload.begin(), payload.end());
}

void BroadcastDeliveryOracle::delivered(std::uint32_t node,
                                        std::uint32_t origin,
                                        std::uint32_t seq,
                                        std::span<const std::uint8_t> payload) {
  ++stats_.deliveries;
  const std::uint64_t k = key(origin, seq);
  const auto it = messages_.find(k);
  if (it == messages_.end()) {
    violation("node " + std::to_string(node) + " delivered phantom message " +
              msg_name(k));
    return;
  }
  Message& msg = it->second;
  if (msg.payload.size() != payload.size() ||
      !std::equal(payload.begin(), payload.end(), msg.payload.begin())) {
    violation("node " + std::to_string(node) + " delivered corrupt payload for " +
              msg_name(k) + ": " + std::to_string(payload.size()) + " bytes vs " +
              std::to_string(msg.payload.size()) + " sent");
    return;
  }
  if (unstable_.count(node) != 0) {
    // A churned node's delivered-set died with its old incarnation; the
    // reborn one legitimately re-delivers. Count it, don't judge it.
    ++stats_.unstable_deliveries;
    msg.delivered_to.insert(node);
    return;
  }
  if (!msg.delivered_to.insert(node).second)
    violation("node " + std::to_string(node) + " delivered " + msg_name(k) +
              " twice");
}

void BroadcastDeliveryOracle::mark_unstable(std::uint32_t node) {
  unstable_.insert(node);
}

bool BroadcastDeliveryOracle::complete(std::uint32_t node) const {
  return std::all_of(messages_.begin(), messages_.end(), [&](const auto& kv) {
    return kv.second.delivered_to.count(node) != 0;
  });
}

bool BroadcastDeliveryOracle::finalize(
    std::span<const std::uint32_t> members) {
  for (const auto& [k, msg] : messages_) {
    for (const std::uint32_t node : members) {
      if (unstable_.count(node) != 0) continue;
      if (msg.delivered_to.count(node) == 0)
        violation("node " + std::to_string(node) + " never delivered " +
                  msg_name(k));
    }
  }
  return ok();
}

void BroadcastDeliveryOracle::publish(obs::Registry& registry,
                                      std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".broadcasts").set(stats_.broadcasts);
  registry.counter(p + ".deliveries").set(stats_.deliveries);
  registry.counter(p + ".unstable_deliveries")
      .set(stats_.unstable_deliveries);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::check
