// Per-protocol structural invariants, checked after every scheduler pass.
//
// Where the DeliveryOracle judges a run by its end-to-end outcome, the
// HostAuditor condemns bad *intermediate* states the moment they appear:
// a TCP PCB whose sequence pointers cross, a retransmit timer armed with
// nothing in flight, a reassembly table that accepted overlapping
// fragments, an ARP cache whose parked-packet accounting drifted. Install
// one auditor per host via install(); it hangs itself on the host's
// post-pass hook so every pump() that handled frames is followed by a
// full audit. Violations accumulate with the simulated time at which the
// state was first seen — under deterministic seeds that pins the exact
// scheduler pass.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "stack/host.hpp"

namespace ldlp::check {

struct AuditorStats {
  std::uint64_t passes = 0;       ///< Audit sweeps run.
  std::uint64_t pcbs_checked = 0;
  std::uint64_t violations = 0;
};

class HostAuditor {
 public:
  explicit HostAuditor(stack::Host& host, std::string label = {});

  /// Hook this auditor onto the host's post-pass hook (replaces any
  /// previous hook; one auditor per host).
  void install();

  /// One audit sweep over TCP PCBs, the IP reassembly table and the ARP
  /// cache, plus every registered extra audit. Safe to call directly
  /// (tests do) as well as from the hook.
  void run();

  /// Register a subsystem-supplied audit: it returns the violations it
  /// found this sweep (empty = clean) and runs on every run(). This is how
  /// structures the auditor cannot know about — the ldlp::pipe stage
  /// queues and their mbuf-ownership invariant — join the per-pass sweep
  /// without a check -> pipe dependency.
  void add_audit(std::function<std::vector<std::string>()> audit) {
    extra_audits_.push_back(std::move(audit));
  }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const AuditorStats& stats() const noexcept { return stats_; }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "check.audit") const;

 private:
  /// Last-seen per-incarnation state for monotonicity checks. A PCB slot
  /// is reused across connections, so tracking re-baselines whenever the
  /// slot's (iss, irs) pair changes or it returns to Closed/Listen.
  struct PcbTrack {
    bool valid = false;
    std::uint32_t iss = 0;
    std::uint32_t irs = 0;
    std::uint32_t rcv_nxt = 0;
    std::uint32_t snd_una = 0;
  };

  void audit_tcp();
  void audit_reassembly();
  void audit_arp();
  void violation(const std::string& what);

  stack::Host& host_;
  std::string label_;
  std::vector<std::function<std::vector<std::string>()>> extra_audits_;
  std::map<std::uint32_t, PcbTrack> tracks_;
  std::vector<std::string> violations_;
  AuditorStats stats_;
};

}  // namespace ldlp::check
