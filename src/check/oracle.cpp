#include "check/oracle.hpp"

#include <algorithm>

namespace ldlp::check {

namespace {

/// First index where the two ranges disagree (== len when equal).
std::size_t mismatch_at(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b) {
  const auto [ita, itb] = std::mismatch(a.begin(), a.end(), b.begin());
  return static_cast<std::size_t>(ita - a.begin());
}

}  // namespace

DeliveryOracle::FlowId DeliveryOracle::open_stream(std::string label) {
  streams_.push_back(StreamFlow{std::move(label), {}, 0, false});
  return static_cast<FlowId>(streams_.size() - 1);
}

DeliveryOracle::FlowId DeliveryOracle::open_datagram(std::string label) {
  datagrams_.push_back(DatagramFlow{std::move(label), {}});
  return static_cast<FlowId>(datagrams_.size() - 1);
}

void DeliveryOracle::stream_sent(FlowId flow,
                                 std::span<const std::uint8_t> bytes) {
  StreamFlow& f = streams_.at(flow);
  f.sent.insert(f.sent.end(), bytes.begin(), bytes.end());
  stats_.stream_bytes_sent += bytes.size();
}

void DeliveryOracle::datagram_sent(FlowId flow,
                                   std::span<const std::uint8_t> payload) {
  DatagramFlow& f = datagrams_.at(flow);
  std::vector<std::uint8_t> key(payload.begin(), payload.end());
  ++f.payloads[std::move(key)].first;
  ++stats_.datagrams_sent;
}

void DeliveryOracle::bind_stream_rx(FlowId flow, stack::SocketId socket) {
  stream_rx_[socket] = flow;
}

void DeliveryOracle::bind_datagram_rx(FlowId flow, stack::SocketId socket) {
  datagram_rx_[socket] = flow;
}

void DeliveryOracle::on_stream_append(stack::SocketId id,
                                      std::span<const std::uint8_t> bytes) {
  const auto it = stream_rx_.find(id);
  if (it == stream_rx_.end()) return;
  StreamFlow& f = streams_.at(it->second);
  stats_.stream_bytes_delivered += bytes.size();
  if (f.poisoned) return;
  if (f.delivered + bytes.size() > f.sent.size()) {
    violation("stream '" + f.label + "': delivered " +
              std::to_string(f.delivered + bytes.size()) +
              " bytes but only " + std::to_string(f.sent.size()) +
              " were sent (fabricated or re-delivered data)");
    f.poisoned = true;
    return;
  }
  const std::span<const std::uint8_t> expect(f.sent.data() + f.delivered,
                                             bytes.size());
  const std::size_t diff = mismatch_at(bytes, expect);
  if (diff != bytes.size()) {
    violation("stream '" + f.label + "': byte mismatch at offset " +
              std::to_string(f.delivered + diff) + " (got byte " +
              std::to_string(bytes[diff]) + ", sent " +
              std::to_string(expect[diff]) + ")");
    f.poisoned = true;
    return;
  }
  f.delivered += bytes.size();
}

void DeliveryOracle::on_datagram(stack::SocketId id,
                                 const stack::Datagram& dgram) {
  const auto it = datagram_rx_.find(id);
  if (it == datagram_rx_.end()) return;
  DatagramFlow& f = datagrams_.at(it->second);
  ++stats_.datagrams_delivered;
  const auto entry = f.payloads.find(dgram.payload);
  if (entry == f.payloads.end()) {
    violation("datagram '" + f.label + "': delivered a " +
              std::to_string(dgram.payload.size()) +
              "-byte payload that was never sent");
    return;
  }
  auto& [sent, delivered] = entry->second;
  ++delivered;
  if (delivered > sent) {
    ++stats_.datagram_duplicates;
    if (!allow_duplicates_) {
      violation("datagram '" + f.label + "': payload delivered " +
                std::to_string(delivered) + " times but sent only " +
                std::to_string(sent) +
                " times (duplication without a duplicate episode)");
    }
  }
}

bool DeliveryOracle::finalize() {
  for (const StreamFlow& f : streams_) {
    if (f.poisoned) continue;  // already condemned with a better message
    if (allow_truncation_) continue;  // prefix-exactness already enforced
    if (f.delivered != f.sent.size()) {
      violation("stream '" + f.label + "': only " +
                std::to_string(f.delivered) + " of " +
                std::to_string(f.sent.size()) + " sent bytes delivered");
    }
  }
  return ok();
}

void DeliveryOracle::violation(std::string what) {
  ++stats_.violations;
  violations_.push_back(std::move(what));
}

void DeliveryOracle::publish(obs::Registry& registry,
                             std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".stream_bytes_sent").set(stats_.stream_bytes_sent);
  registry.counter(p + ".stream_bytes_delivered")
      .set(stats_.stream_bytes_delivered);
  registry.counter(p + ".datagrams_sent").set(stats_.datagrams_sent);
  registry.counter(p + ".datagrams_delivered").set(stats_.datagrams_delivered);
  registry.counter(p + ".datagram_duplicates")
      .set(stats_.datagram_duplicates);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::check
