// Overlay membership structural invariants, audited per scheduler pass.
//
// The overlay layer (src/overlay) snapshots each node's views into plain
// OverlayView structs; the ViewAuditor condemns structurally-broken
// membership state the moment it appears, exactly as the HostAuditor
// does for PCBs. The check layer deliberately knows nothing about
// ldlp::overlay — only about this snapshot type — so the oracle can
// never be fooled by the implementation it is judging, and the
// dependency arrow stays overlay -> check.
//
// Per-pass invariants (hold at every instant, even mid-churn):
//   * a node never appears in its own active or passive view;
//   * |active| <= active_max and |passive| <= passive_max;
//   * active and passive views are disjoint;
//   * the eager/lazy dissemination sets partition the active view.
//
// Eventual invariant (checked by final_audit() after the fault horizon,
// once the convergence oracle says views stopped moving):
//   * link symmetry — if a is in b's active view then b is in a's;
//     HyParView repairs asymmetry reactively, so transient asymmetry
//     during churn is legal but persistent asymmetry is a lost repair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ldlp::check {

/// One overlay node's membership state, snapshotted for auditing.
/// Filled by overlay::OverlayNode::fill_view(); vectors are reused
/// across passes so per-pass auditing of a 64-node fleet allocates
/// nothing in steady state.
struct OverlayView {
  std::uint32_t self = 0;          ///< Node id (IPv4 address).
  bool live = true;                ///< False while the host is down.
  std::size_t active_max = 0;
  std::size_t passive_max = 0;
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> passive;
  std::vector<std::uint32_t> eager;  ///< Tree subset of `active`.
};

struct ViewAuditorStats {
  std::uint64_t passes = 0;
  std::uint64_t views_checked = 0;
  std::uint64_t violations = 0;
};

class ViewAuditor {
 public:
  /// One audit sweep over the fleet's views (per-pass invariants only).
  /// Dead nodes (live == false) are skipped — a crashed host's state is
  /// not required to be sane, only its reborn state is.
  void audit(std::span<const OverlayView> views, double now_sec);

  /// End-of-run audit: per-pass invariants plus link symmetry. Call
  /// after the convergence oracle reports stable views.
  void final_audit(std::span<const OverlayView> views, double now_sec);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const ViewAuditorStats& stats() const noexcept {
    return stats_;
  }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "check.overlay") const;

 private:
  void audit_one(const OverlayView& view, double now_sec);
  void violation(std::string what);

  std::vector<std::string> violations_;
  ViewAuditorStats stats_;
};

}  // namespace ldlp::check
