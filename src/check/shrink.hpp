// Failing-seed shrinker: delta-debugging over fault schedules.
//
// A random chaos schedule that breaks an oracle typically carries a dozen
// episodes of which one or two matter. shrink() minimises it the ddmin
// way: flatten every (injector, episode) pair into one list, try removing
// progressively smaller chunks, keep any removal after which the caller's
// predicate still reports failure, and repeat until no single episode can
// be removed. The predicate re-runs the scenario — deterministically,
// since a Schedule pins every random decision — so each accepted removal
// is *verified*, not guessed. The result is the schedule a human debugs:
// minimal, reproducible via `chaos_soak --replay`, small enough to commit
// next to the fix.
#pragma once

#include <cstdint>
#include <functional>

#include "check/schedule.hpp"

namespace ldlp::check {

struct ShrinkResult {
  Schedule schedule;            ///< Minimal still-failing schedule.
  std::size_t episodes_before = 0;
  std::size_t episodes_after = 0;
  std::size_t runs = 0;         ///< Predicate invocations spent.
  bool converged = false;       ///< False when max_runs cut shrinking short.
};

/// Minimise `failing` under `still_fails` (must return true for `failing`
/// itself; the caller has already observed that run fail). At most
/// `max_runs` predicate calls are spent. Injector specs whose plans end
/// up empty are kept (an attached injector with no episodes is inert but
/// preserves host wiring).
[[nodiscard]] ShrinkResult shrink(
    const Schedule& failing,
    const std::function<bool(const Schedule&)>& still_fails,
    std::size_t max_runs = 256);

}  // namespace ldlp::check
