// Fault schedules as data: the "ldlp.schedule.v1" interchange format.
//
// A Schedule captures everything the chaos harness needs to re-create a
// run's adversity: the scenario name, the seed (which still derives the
// traffic payloads), and per-host injector specs — each an RNG seed plus
// a full FaultPlan episode list. Serialising through obs::Json keeps the
// repo zero-dependency and byte-stable, so a failing seed's schedule can
// be committed next to the bug it reproduces and replayed years later
// with `chaos_soak --replay <file>`.
//
// The shrinker (check/shrink.hpp) operates on Schedules directly: episodes
// are removed, the candidate is re-run, and the minimal still-failing
// schedule is what gets written out.
//
// Compatibility contract (still "ldlp.schedule.v1"): readers ignore JSON
// keys they do not know, and writers only emit the fabric fault-domain
// keys (domain / domain_index / direction) when an episode actually has a
// domain. Old shrunk-schedule artifacts therefore replay bit-identically,
// and artifacts written by a newer build still load on this one as long
// as the kinds/domains they use exist. A fleet schedule is just a
// Schedule whose injector list carries one spec named "fabric" (the
// topology-scoped episodes) next to per-host specs ("h0", "h17", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/json.hpp"

namespace ldlp::check {

/// One host's share of the adversity: which host, its injector RNG seed,
/// and the episode timeline it executes.
struct InjectorSpec {
  std::string host;
  std::uint64_t rng_seed = 0;
  fault::FaultPlan plan;
};

struct Schedule {
  std::string scenario;       ///< Harness scenario name ("tcp", "dns", ...).
  std::uint64_t seed = 0;     ///< Drives traffic payloads, ports, names.
  std::vector<InjectorSpec> injectors;

  [[nodiscard]] std::size_t episode_count() const noexcept;

  /// True when any injector carries an episode of `kind` — the harness
  /// uses this to relax oracles where the wire legitimately misbehaves
  /// (e.g. duplicate episodes permit datagram re-delivery).
  [[nodiscard]] bool has_kind(fault::FaultKind kind) const noexcept;

  [[nodiscard]] obs::Json to_json() const;
  [[nodiscard]] static std::optional<Schedule> from_json(
      const obs::Json& doc, std::string* error = nullptr);

  /// File round-trip (pretty-printed JSON). save() returns false on I/O
  /// failure; load() adds the failing path to `error`.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<Schedule> load(
      const std::string& path, std::string* error = nullptr);

  static constexpr const char* kSchema = "ldlp.schedule.v1";
};

}  // namespace ldlp::check
