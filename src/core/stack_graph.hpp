// StackGraph: wires layers together and schedules them.
//
// The graph owns the topology ("directly above" edges, which may fan out —
// a demultiplexing layer has several upper neighbours) and the scheduling
// policy:
//
//  * kConventional — classic procedure-call layering: a message entering
//    the bottom is carried through every layer before the next message is
//    looked at. This is the paper's baseline (and the ALF ordering).
//
//  * kLdlp — locality-driven layer processing (section 3.1): messages
//    entering the graph are queued at the bottom layer; when the graph
//    runs, the bottom layer processes at most `batch_limit` messages
//    (bounding the batch by what fits in the data cache), then every layer
//    above runs to completion, higher layers first, before the bottom
//    layer is given the CPU again. Under light load batches degenerate to
//    a single message; under heavy load each layer's code is loaded into
//    the I-cache once per batch instead of once per message.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/layer.hpp"

namespace ldlp::core {

enum class SchedMode : std::uint8_t { kConventional, kLdlp };

struct GraphStats {
  /// Messages offered at inject(), admitted or not. Entry conservation:
  /// injected == shed_entry + (enqueued at the entry layers by inject).
  std::uint64_t injected = 0;
  /// Messages refused at inject() because the graph-wide backlog limit
  /// was reached (LDLP mode). Shedding happens at the entry layer only:
  /// work already admitted into higher-layer queues always finishes, per
  /// §3.1's run-to-completion batching (higher layers drain first).
  std::uint64_t shed_entry = 0;
  /// Messages cut off by the conventional-mode recursion depth guard
  /// (a layer cycle or pathological emit chain, which would otherwise
  /// grow the call stack without bound).
  std::uint64_t shed_depth = 0;
  /// Messages that left the top of the stack (emitted out of an
  /// unconnected port) — "delivered" in the conservation law.
  std::uint64_t delivered_top = 0;
  /// run() invocations that found work (LDLP mode).
  std::uint64_t runs = 0;
};

class StackGraph {
 public:
  StackGraph() = default;
  StackGraph(const StackGraph&) = delete;
  StackGraph& operator=(const StackGraph&) = delete;

  /// Register a layer (non-owning: layers typically live in the host
  /// object that also owns PCBs etc.). The layer must outlive the graph.
  LayerId add_layer(Layer& layer);

  /// Connect `lower`'s output `port` to `upper`'s input.
  void connect(LayerId lower, LayerId upper, int port = 0);

  void set_mode(SchedMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] SchedMode mode() const noexcept { return mode_; }

  /// Bound on messages the *entry* layer processes per activation (the
  /// paper: "made to yield the CPU after processing as many messages as
  /// will fit in the data cache"). 0 means unlimited.
  void set_batch_limit(std::size_t limit) noexcept { batch_limit_ = limit; }
  [[nodiscard]] std::size_t batch_limit() const noexcept {
    return batch_limit_;
  }

  /// Hand a message to `layer`. Conventional mode processes it through the
  /// whole stack immediately; LDLP mode enqueues it for the next run().
  void inject(LayerId layer, Message msg);

  /// LDLP mode: drain all queues per the schedule above. Returns messages
  /// processed across all layers. No-op (returns 0) in conventional mode,
  /// where inject() already did the work.
  std::size_t run();

  /// One pipeline sweep: every layer with queued work processes only the
  /// messages present when the sweep started (bottom-up, at most
  /// batch_limit at the entry snapshot), so a message advances exactly one
  /// layer per pass instead of running to the top. This is the hybrid
  /// stage schedule of ldlp::pipe — per-stage batches with per-stage
  /// hand-off — and it shares all queue/routing code with run(). Returns
  /// messages processed this pass; callers loop until 0 (or interleave
  /// passes across stages). No-op in conventional mode.
  std::size_t run_stage_pass();

  [[nodiscard]] Layer& layer(LayerId id) { return *layers_.at(id); }
  [[nodiscard]] const Layer& layer(LayerId id) const {
    return *layers_.at(id);
  }
  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }

  /// Total messages currently queued anywhere in the graph.
  [[nodiscard]] std::size_t backlog() const noexcept;

  /// Overload protection: refuse new messages at inject() once the total
  /// backlog reaches `limit` (0 = unlimited). Messages already inside the
  /// graph are never shed by this limit.
  void set_backlog_limit(std::size_t limit) noexcept {
    backlog_limit_ = limit;
  }
  [[nodiscard]] std::size_t backlog_limit() const noexcept {
    return backlog_limit_;
  }

  [[nodiscard]] const GraphStats& graph_stats() const noexcept {
    return gstats_;
  }

  /// Wall-clock seconds per run() that found work — the cost of draining
  /// one admitted backlog (observability only; not simulated time).
  [[nodiscard]] const RunningStats& drain_stats() const noexcept {
    return drain_seconds_;
  }

  /// Zero the graph counters, the drain-latency accumulator and every
  /// registered layer's stats. Queued messages are untouched. Multi-run
  /// harnesses call this between runs so totals never carry over.
  void reset_stats() noexcept;

 private:
  friend class Layer;

  /// Route a message emitted by `from` out of `port`.
  void route(LayerId from, int port, Message msg);

  /// Run `id` to completion, then every layer directly above it (depth-
  /// first, following the paper's description).
  std::size_t drain_upward(LayerId id);

  struct Node {
    Layer* layer = nullptr;
    std::vector<std::pair<int, LayerId>> out_edges;
    std::vector<LayerId> above;  ///< Unique upper neighbours, in port order.
  };

  [[nodiscard]] LayerId find_edge(LayerId from, int port) const noexcept;

  /// Conventional-mode nesting bound; deep enough for any sane layering,
  /// shallow enough that an emit cycle sheds instead of overflowing the
  /// call stack.
  static constexpr int kMaxProcessDepth = 64;

  std::vector<Node> nodes_;
  std::vector<Layer*> layers_;
  SchedMode mode_ = SchedMode::kConventional;
  std::size_t batch_limit_ = 0;
  std::size_t backlog_limit_ = 0;
  int depth_ = 0;  ///< Live process_now() nesting (conventional mode).
  GraphStats gstats_;
  RunningStats drain_seconds_;
};

}  // namespace ldlp::core
