#include "core/message.hpp"

// Header-only; anchors the translation unit.
