#include "core/blocking.hpp"

#include <algorithm>

namespace ldlp::core {

BlockingEstimate estimate_blocking(const StackFootprint& stack,
                                   const sim::CacheConfig& icache,
                                   const sim::CacheConfig& dcache) noexcept {
  BlockingEstimate out;
  out.layer_fits_icache = stack.layer_code_bytes <= icache.size_bytes;
  out.layers_in_icache =
      stack.layer_code_bytes != 0
          ? icache.size_bytes / stack.layer_code_bytes
          : stack.num_layers;

  // Data cache must hold every layer's mutable data plus the batch of
  // messages being carried through the stack.
  const std::uint64_t layers_data =
      static_cast<std::uint64_t>(stack.num_layers) * stack.layer_data_bytes;
  if (layers_data >= dcache.size_bytes || stack.message_bytes == 0) {
    out.batch_limit = 1;
    return out;
  }
  const std::uint64_t room = dcache.size_bytes - layers_data;
  out.batch_limit = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, room / stack.message_bytes));
  return out;
}

ShardPlan plan_shards(const StackFootprint& stack,
                      const sim::CacheConfig& icache,
                      const sim::CacheConfig& dcache,
                      std::uint32_t shards) noexcept {
  ShardPlan plan;
  plan.shards = std::max<std::uint32_t>(1, shards);
  plan.blocking = estimate_blocking(stack, icache, dcache);
  plan.batch_limit = plan.blocking.batch_limit;
  return plan;
}

}  // namespace ldlp::core
