// Message: the unit of work passed between layers.
//
// Owns its packet (mbuf chain hand-off discipline, section 3.2) and
// carries the bookkeeping the schedulers and measurements need: arrival
// time for latency accounting and a flow id for demultiplexing layers.
#pragma once

#include <cstdint>

#include "buf/packet.hpp"
#include "eventsim/event_queue.hpp"

namespace ldlp::core {

struct Message {
  buf::Packet packet;
  eventsim::SimTime arrival = 0.0;
  std::uint64_t flow_id = 0;
  std::uint32_t aux = 0;  ///< Layer-private scratch (e.g. parsed offsets).

  Message() = default;
  explicit Message(buf::Packet pkt, eventsim::SimTime when = 0.0)
      : packet(std::move(pkt)), arrival(when) {}

  Message(Message&&) noexcept = default;
  Message& operator=(Message&&) noexcept = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
};

}  // namespace ldlp::core
