// Layer: one protocol layer with its own input queue.
//
// Section 3.2 of the paper: "the entry point to each layer is modified to
// append the message to a queue of messages to be processed for that
// layer, and then return. When a layer is invoked, it pulls messages off
// its queue, making calls as usual to the next layer to propagate messages
// upward, until the queue is exhausted."
//
// deliver() is that entry point. Under the conventional schedule the graph
// bypasses the queue and processes immediately (procedure-call layering);
// under LDLP it enqueues and the graph drains queues layer by layer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/message.hpp"

namespace ldlp::core {

class StackGraph;
using LayerId = std::uint32_t;
inline constexpr LayerId kNoLayer = ~LayerId{0};

struct LayerStats {
  /// Messages handed to the layer, whether accepted into the queue,
  /// processed immediately (conventional mode) or dropped at a full
  /// queue. Conservation law: enqueued == processed + drops + queue_len.
  std::uint64_t enqueued = 0;
  std::uint64_t processed = 0;
  std::uint64_t drops = 0;
  std::uint64_t activations = 0;  ///< Times the layer started draining.
  std::size_t max_queue = 0;

  /// Messages handled per activation — the achieved blocking factor. The
  /// whole point of LDLP is pushing this above 1 under load.
  [[nodiscard]] double mean_batch() const noexcept {
    return activations != 0
               ? static_cast<double>(processed) / static_cast<double>(activations)
               : 0.0;
  }
};

class Layer {
 public:
  explicit Layer(std::string name, std::size_t queue_capacity = 500)
      : name_(std::move(name)), queue_capacity_(queue_capacity) {}

  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t queue_len() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_capacity_;
  }
  /// Bound this layer's input queue; enqueue beyond it drops the message
  /// (counted in stats().drops). Overload protection, not flow control:
  /// the sender is not told.
  void set_queue_capacity(std::size_t capacity) noexcept {
    queue_capacity_ = capacity;
  }
  [[nodiscard]] const LayerStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 protected:
  /// Handle one message. Forward results upward with emit(); dropping a
  /// message is just destroying it.
  virtual void process(Message msg) = 0;

  /// Send a message out of `port` (ports map to "directly above" layers;
  /// port 0 is the default upward edge). No-op if the port is unconnected.
  void emit(Message msg, int port = 0);

 private:
  friend class StackGraph;

  /// Graph-side entry point; behaviour depends on the scheduling mode.
  void enqueue(Message msg);
  /// Drain up to `limit` queued messages. Returns number processed.
  std::size_t drain(std::size_t limit);
  void process_now(Message msg);

  std::string name_;
  std::size_t queue_capacity_;
  std::deque<Message> queue_;
  StackGraph* graph_ = nullptr;
  LayerId id_ = kNoLayer;
  LayerStats stats_;
};

}  // namespace ldlp::core
