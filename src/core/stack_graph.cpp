#include "core/stack_graph.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"

namespace ldlp::core {

LayerId StackGraph::add_layer(Layer& layer) {
  LDLP_ASSERT_MSG(layer.graph_ == nullptr,
                  "layer already registered with a graph");
  const auto id = static_cast<LayerId>(nodes_.size());
  nodes_.push_back(Node{&layer, {}, {}});
  layers_.push_back(&layer);
  layer.graph_ = this;
  layer.id_ = id;
  return id;
}

void StackGraph::connect(LayerId lower, LayerId upper, int port) {
  LDLP_ASSERT(lower < nodes_.size() && upper < nodes_.size());
  LDLP_ASSERT_MSG(find_edge(lower, port) == kNoLayer,
                  "port already connected");
  Node& node = nodes_[lower];
  node.out_edges.emplace_back(port, upper);
  if (std::find(node.above.begin(), node.above.end(), upper) ==
      node.above.end())
    node.above.push_back(upper);
}

LayerId StackGraph::find_edge(LayerId from, int port) const noexcept {
  for (const auto& [p, to] : nodes_[from].out_edges) {
    if (p == port) return to;
  }
  return kNoLayer;
}

void StackGraph::route(LayerId from, int port, Message msg) {
  const LayerId to = find_edge(from, port);
  if (to == kNoLayer) {  // top of stack or unconnected port: consume
    ++gstats_.delivered_top;
    return;
  }
  Layer& target = *nodes_[to].layer;
  if (mode_ == SchedMode::kConventional) {
    if (depth_ >= kMaxProcessDepth) {
      ++gstats_.shed_depth;
      return;
    }
    ++depth_;
    target.process_now(std::move(msg));
    --depth_;
  } else {
    // Interior hops are never shed by the backlog limit: a message the
    // graph accepted runs to completion (per-layer queue bounds still
    // cap memory, counted in LayerStats::drops).
    target.enqueue(std::move(msg));
  }
}

void StackGraph::inject(LayerId id, Message msg) {
  LDLP_ASSERT(id < nodes_.size());
  ++gstats_.injected;
  Layer& target = *nodes_[id].layer;
  if (mode_ == SchedMode::kConventional) {
    if (depth_ >= kMaxProcessDepth) {
      ++gstats_.shed_depth;
      return;
    }
    ++depth_;
    target.process_now(std::move(msg));
    --depth_;
  } else {
    // Overload shedding happens here, at admission: drop the newest
    // message while the graph is saturated so everything already
    // admitted still finishes (higher layers drain first in run()).
    if (backlog_limit_ != 0 && backlog() >= backlog_limit_) {
      ++gstats_.shed_entry;
      return;
    }
    target.enqueue(std::move(msg));
  }
}

std::size_t StackGraph::drain_upward(LayerId id) {
  Node& node = nodes_[id];
  std::size_t processed = node.layer->drain(SIZE_MAX);
  // "Then, it invokes all layers that can be directly above it (there can
  // be more than one) to process the messages in their queues."
  for (const LayerId up : node.above) processed += drain_upward(up);
  return processed;
}

std::size_t StackGraph::run() {
  if (mode_ == SchedMode::kConventional) return 0;
  const auto started = std::chrono::steady_clock::now();
  std::size_t total = 0;
  for (;;) {
    bool any = false;
    // Bottom-most layers are those with queued work; the entry layer
    // yields after batch_limit messages, everything above runs to
    // completion (higher priority).
    for (LayerId id = 0; id < nodes_.size(); ++id) {
      Layer& layer = *nodes_[id].layer;
      if (layer.queue_len() == 0) continue;
      any = true;
      const std::size_t limit = batch_limit_ == 0 ? SIZE_MAX : batch_limit_;
      std::size_t processed = layer.drain(limit);
      for (const LayerId up : nodes_[id].above) processed += drain_upward(up);
      total += processed;
    }
    if (!any) break;
  }
  if (total != 0) {
    ++gstats_.runs;
    drain_seconds_.add(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }
  return total;
}

std::size_t StackGraph::run_stage_pass() {
  if (mode_ == SchedMode::kConventional) return 0;
  // Snapshot first: work a lower layer hands up during this pass belongs
  // to the *next* pass, which is what makes each pass one stage advance.
  std::vector<std::size_t> snapshot(nodes_.size());
  for (LayerId id = 0; id < nodes_.size(); ++id)
    snapshot[id] = nodes_[id].layer->queue_len();
  std::size_t total = 0;
  for (LayerId id = 0; id < nodes_.size(); ++id) {
    std::size_t limit = snapshot[id];
    if (limit == 0) continue;
    if (batch_limit_ != 0) limit = std::min(limit, batch_limit_);
    total += nodes_[id].layer->drain(limit);
  }
  return total;
}

void StackGraph::reset_stats() noexcept {
  gstats_ = {};
  drain_seconds_.reset();
  for (Layer* layer : layers_) layer->reset_stats();
}

std::size_t StackGraph::backlog() const noexcept {
  std::size_t total = 0;
  for (const Node& node : nodes_) total += node.layer->queue_len();
  return total;
}

}  // namespace ldlp::core
