// Layer grouping (paper section 6).
//
// "A reasonable procedure when implementing protocol stacks from scratch
// is to write layers as independent units, measure their working sets,
// and then decide how to group them to maximize locality."
//
// plan_groups() is that decision: partition the (ordered) layer stack
// into consecutive groups whose combined code working set fits the
// instruction cache. Within a group, layers run back-to-back per message
// (conventional order — their code is co-resident, so nothing is lost and
// per-layer queue hand-offs are saved); across groups, processing is
// blocked LDLP-style. Group size 1 everywhere degenerates to pure LDLP;
// one group holding every layer degenerates to the conventional schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace ldlp::core {

/// Greedy bottom-up partition: each group takes consecutive layers while
/// their summed code fits `icache_bytes * occupancy` (a layer larger than
/// that budget gets a group of its own). Returns the group sizes, in
/// stack order, summing to layer_code_bytes.size().
///
/// The occupancy margin matters: filling a set-associative cache to the
/// brim still overflows individual sets (and filling a direct-mapped one
/// conflicts almost surely under uncontrolled placement), at which point
/// the group thrashes per message and grouping backfires. 0.75 is a safe
/// default for 4-way caches; callers with Cord-style layout control can
/// raise it.
[[nodiscard]] std::vector<std::uint32_t> plan_groups(
    const std::vector<std::uint32_t>& layer_code_bytes,
    std::uint32_t icache_bytes, double occupancy = 0.75);

}  // namespace ldlp::core
