#include "core/layer.hpp"

#include "common/assert.hpp"
#include "core/stack_graph.hpp"

namespace ldlp::core {

void Layer::emit(Message msg, int port) {
  LDLP_ASSERT_MSG(graph_ != nullptr, "layer not registered with a graph");
  graph_->route(id_, port, std::move(msg));
}

void Layer::enqueue(Message msg) {
  ++stats_.enqueued;
  if (queue_.size() >= queue_capacity_) {
    ++stats_.drops;
    return;  // msg destructor frees the chain
  }
  queue_.push_back(std::move(msg));
  if (queue_.size() > stats_.max_queue) stats_.max_queue = queue_.size();
}

std::size_t Layer::drain(std::size_t limit) {
  if (queue_.empty()) return 0;
  ++stats_.activations;
  std::size_t n = 0;
  while (!queue_.empty() && n < limit) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.processed;
    ++n;
    process(std::move(msg));
  }
  return n;
}

void Layer::process_now(Message msg) {
  ++stats_.enqueued;
  ++stats_.activations;
  ++stats_.processed;
  process(std::move(msg));
}

}  // namespace ldlp::core
