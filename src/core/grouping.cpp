#include "core/grouping.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ldlp::core {

std::vector<std::uint32_t> plan_groups(
    const std::vector<std::uint32_t>& layer_code_bytes,
    std::uint32_t icache_bytes, double occupancy) {
  LDLP_ASSERT(occupancy > 0.0 && occupancy <= 1.0);
  const auto budget = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(icache_bytes) * occupancy));
  std::vector<std::uint32_t> groups;
  std::uint64_t used = 0;
  std::uint32_t count = 0;
  for (const std::uint32_t code : layer_code_bytes) {
    if (count != 0 && used + code > budget) {
      groups.push_back(count);
      used = 0;
      count = 0;
    }
    used += code;
    ++count;
  }
  if (count != 0) groups.push_back(count);
  return groups;
}

}  // namespace ldlp::core
