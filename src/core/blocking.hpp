// Blocking-factor estimation (section 3.2).
//
// "For many signalling protocols, just one layer will fit in the
// instruction cache, while several messages fit in the data cache. For
// this special case, implementation is especially simple. Messages are
// processed in batches consisting of as many available messages as will
// fit in the data cache."
//
// estimate_batch_limit computes that bound: how many messages fit in the
// data cache alongside the layers' own data working sets. The Lam-style
// refinement (does one layer's code even fit in the I-cache? how many
// layers could share it?) is exposed for diagnostics.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"

namespace ldlp::core {

struct StackFootprint {
  std::uint32_t num_layers = 5;
  std::uint32_t layer_code_bytes = 6 * 1024;  ///< Per layer.
  std::uint32_t layer_data_bytes = 256;       ///< Per layer.
  std::uint32_t message_bytes = 552;
};

struct BlockingEstimate {
  std::uint32_t batch_limit = 1;       ///< Messages per batch.
  std::uint32_t layers_in_icache = 0;  ///< How many layers' code fits at once.
  bool layer_fits_icache = false;      ///< Does a single layer's code fit?
};

[[nodiscard]] BlockingEstimate estimate_blocking(
    const StackFootprint& stack, const sim::CacheConfig& icache,
    const sim::CacheConfig& dcache) noexcept;

/// Receive-side sharding plan (ldlp::par): how a flow-hashed multi-queue
/// receive path should schedule per-shard LDLP batches.
struct ShardPlan {
  std::uint32_t shards = 1;
  /// Entry-layer batch bound per shard. Every shard owns a private
  /// primary-cache pair, so the per-shard bound equals the single-queue
  /// bound — sharding multiplies d-cache capacity, it does not split it.
  std::uint32_t batch_limit = 1;
  BlockingEstimate blocking{};  ///< The per-shard estimate behind it.
};

/// Plan `shards` contexts over a stack: per-shard blocking estimate from
/// the (private) primary geometry. shards == 0 is clamped to 1.
[[nodiscard]] ShardPlan plan_shards(const StackFootprint& stack,
                                    const sim::CacheConfig& icache,
                                    const sim::CacheConfig& dcache,
                                    std::uint32_t shards) noexcept;

}  // namespace ldlp::core
