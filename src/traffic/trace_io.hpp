// Arrival-trace persistence.
//
// Simple line-oriented text format ("<time_sec> <size_bytes>\n") so traces
// can be saved once, inspected with standard tools, and replayed across
// benchmark runs exactly — the paper's Figure 7 replays a fixed trace while
// sweeping CPU speed, and reproducibility requires the same property here.
#pragma once

#include <string>
#include <vector>

#include "traffic/arrivals.hpp"

namespace ldlp::traffic {

/// Returns false on I/O failure.
[[nodiscard]] bool save_trace(const std::string& path,
                              const std::vector<PacketArrival>& trace);

/// Returns an empty vector on I/O failure or parse error (a valid trace is
/// never empty in practice; callers that care can check file existence).
[[nodiscard]] std::vector<PacketArrival> load_trace(const std::string& path);

}  // namespace ldlp::traffic
