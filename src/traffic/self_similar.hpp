// Self-similar traffic generation.
//
// Stand-in for the Bellcore Ethernet traces (Leland et al. [21]) the paper
// replays for Figure 7. The generator superposes many independent ON/OFF
// sources whose ON and OFF period lengths are Pareto-distributed with
// infinite variance (1 < alpha < 2); Willinger/Taqqu showed the aggregate
// converges to fractional Gaussian noise with Hurst parameter
// H = (3 - min(alpha_on, alpha_off)) / 2, which is precisely the model
// that explains the measured self-similarity of those traces. With the
// defaults (alpha = 1.2) the aggregate targets H ~= 0.9, matching the
// published estimates for the 1989 traces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "traffic/arrivals.hpp"

namespace ldlp::traffic {

struct SelfSimilarConfig {
  double mean_rate_per_sec = 1000.0;  ///< Aggregate target mean rate.
  std::uint32_t num_sources = 64;     ///< ON/OFF sources superposed.
  double alpha_on = 1.2;              ///< Pareto shape of ON periods.
  double alpha_off = 1.2;             ///< Pareto shape of OFF periods.
  double mean_on_sec = 0.05;          ///< Mean ON period length.
  double on_fraction = 0.2;           ///< E[on] / (E[on] + E[off]).
  double duration_sec = 1000.0;       ///< Paper uses the first 1000 s.
};

/// Generate a complete, time-sorted arrival trace. Packet sizes are drawn
/// from `sizes` (pass ethernet1989_sizes() for the Figure 7 workload).
/// Deterministic in (config, seed).
[[nodiscard]] std::vector<PacketArrival> generate_self_similar_trace(
    const SelfSimilarConfig& config, SizeModel& sizes, std::uint64_t seed);

/// Convenience: generator wrapped as a replayable source.
[[nodiscard]] std::unique_ptr<TraceReplaySource> make_self_similar_source(
    const SelfSimilarConfig& config, SizeModel& sizes, std::uint64_t seed);

}  // namespace ldlp::traffic
