#include "traffic/size_models.hpp"

#include "common/assert.hpp"

namespace ldlp::traffic {

MixtureSize::MixtureSize(std::vector<Component> components)
    : cdf_(std::move(components)) {
  LDLP_ASSERT(!cdf_.empty());
  double total = 0.0;
  mean_ = 0.0;
  for (const auto& c : cdf_) {
    LDLP_ASSERT(c.weight > 0.0);
    total += c.weight;
  }
  double cum = 0.0;
  for (auto& c : cdf_) {
    mean_ += static_cast<double>(c.bytes) * (c.weight / total);
    cum += c.weight / total;
    c.weight = cum;
  }
  cdf_.back().weight = 1.0;  // guard against rounding
}

std::uint32_t MixtureSize::sample(Rng& rng) {
  const double u = rng.uniform();
  for (const auto& c : cdf_) {
    if (u <= c.weight) return c.bytes;
  }
  return cdf_.back().bytes;
}

std::unique_ptr<SizeModel> ethernet1989_sizes() {
  // Approximates the published size histogram of the Bellcore August/
  // October 1989 traces: ~40% minimum-size frames, ~30% near-maximum
  // (1072-byte NFS-era data frames and 1518 max), remainder spread.
  return std::make_unique<MixtureSize>(std::vector<MixtureSize::Component>{
      {64, 0.40},
      {144, 0.11},
      {288, 0.08},
      {552, 0.11},
      {1072, 0.22},
      {1518, 0.08},
  });
}

std::unique_ptr<SizeModel> internet552_sizes() {
  return std::make_unique<FixedSize>(552);
}

}  // namespace ldlp::traffic
