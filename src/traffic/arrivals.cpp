#include "traffic/arrivals.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ldlp::traffic {

PoissonSource::PoissonSource(double rate_per_sec,
                             std::unique_ptr<SizeModel> sizes,
                             std::uint64_t seed)
    : mean_gap_(1.0 / rate_per_sec), sizes_(std::move(sizes)), rng_(seed) {
  LDLP_ASSERT(rate_per_sec > 0.0);
  LDLP_ASSERT(sizes_ != nullptr);
}

std::optional<PacketArrival> PoissonSource::next() {
  now_ += rng_.exponential(mean_gap_);
  return PacketArrival{now_, sizes_->sample(rng_)};
}

DeterministicSource::DeterministicSource(double rate_per_sec,
                                         std::uint32_t size_bytes)
    : gap_(1.0 / rate_per_sec), size_(size_bytes) {
  LDLP_ASSERT(rate_per_sec > 0.0);
}

std::optional<PacketArrival> DeterministicSource::next() {
  now_ += gap_;
  return PacketArrival{now_, size_};
}

BurstSource::BurstSource(double burst_rate_per_sec, std::uint32_t burst_len,
                         double intra_gap_sec, std::uint32_t size_bytes,
                         std::uint64_t seed)
    : mean_burst_gap_(1.0 / burst_rate_per_sec),
      burst_len_(burst_len),
      intra_gap_(intra_gap_sec),
      size_(size_bytes),
      rng_(seed) {
  LDLP_ASSERT(burst_rate_per_sec > 0.0 && burst_len > 0);
}

std::optional<PacketArrival> BurstSource::next() {
  if (first_ || in_burst_ == burst_len_) {
    // The next burst never begins before the previous one finished, so the
    // stream stays monotone even when the exponential gap is tiny.
    const eventsim::SimTime prev_end =
        first_ ? 0.0 : burst_start_ + (burst_len_ - 1) * intra_gap_;
    burst_start_ = std::max(prev_end,
                            burst_start_ + rng_.exponential(mean_burst_gap_));
    in_burst_ = 0;
    first_ = false;
  }
  const eventsim::SimTime t = burst_start_ + in_burst_ * intra_gap_;
  ++in_burst_;
  return PacketArrival{t, size_};
}

TraceReplaySource::TraceReplaySource(std::vector<PacketArrival> trace)
    : trace_(std::move(trace)) {
  LDLP_ASSERT_MSG(
      std::is_sorted(trace_.begin(), trace_.end(),
                     [](const PacketArrival& a, const PacketArrival& b) {
                       return a.time < b.time;
                     }),
      "trace must be time-sorted");
}

std::optional<PacketArrival> TraceReplaySource::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  PacketArrival out = trace_[pos_++];
  out.time *= scale_;
  return out;
}

std::vector<PacketArrival> collect(ArrivalSource& source,
                                   eventsim::SimTime horizon,
                                   std::size_t max_count) {
  std::vector<PacketArrival> out;
  while (out.size() < max_count) {
    auto arrival = source.next();
    if (!arrival.has_value() || arrival->time > horizon) break;
    out.push_back(*arrival);
  }
  return out;
}

}  // namespace ldlp::traffic
