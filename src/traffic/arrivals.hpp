// Packet arrival processes.
//
// Every source yields a monotone stream of (arrival time, packet size)
// pairs. Section 4 of the paper drives the synthetic stack from a Poisson
// source of 552-byte messages (Figures 5, 6) and from Ethernet traces
// (Figure 7) — the latter replaced here by a self-similar generator (see
// self_similar.hpp and DESIGN.md section 2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "eventsim/event_queue.hpp"
#include "traffic/size_models.hpp"

namespace ldlp::traffic {

struct PacketArrival {
  eventsim::SimTime time = 0.0;
  std::uint32_t size_bytes = 0;

  friend bool operator==(const PacketArrival&, const PacketArrival&) = default;
};

/// Pull-based arrival stream. next() returns arrivals in nondecreasing
/// time order; nullopt means the source is exhausted.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  [[nodiscard]] virtual std::optional<PacketArrival> next() = 0;
};

/// Poisson arrivals at a fixed mean rate.
class PoissonSource final : public ArrivalSource {
 public:
  PoissonSource(double rate_per_sec, std::unique_ptr<SizeModel> sizes,
                std::uint64_t seed);

  [[nodiscard]] std::optional<PacketArrival> next() override;

 private:
  double mean_gap_;
  std::unique_ptr<SizeModel> sizes_;
  Rng rng_;
  eventsim::SimTime now_ = 0.0;
};

/// Fixed inter-arrival gap (paced load for tests and calibration).
class DeterministicSource final : public ArrivalSource {
 public:
  DeterministicSource(double rate_per_sec, std::uint32_t size_bytes);

  [[nodiscard]] std::optional<PacketArrival> next() override;

 private:
  double gap_;
  std::uint32_t size_;
  eventsim::SimTime now_ = 0.0;
};

/// Back-to-back bursts of `burst_len` packets, bursts spaced by
/// exponential gaps — a crude stress pattern for batch-formation tests.
class BurstSource final : public ArrivalSource {
 public:
  BurstSource(double burst_rate_per_sec, std::uint32_t burst_len,
              double intra_gap_sec, std::uint32_t size_bytes,
              std::uint64_t seed);

  [[nodiscard]] std::optional<PacketArrival> next() override;

 private:
  double mean_burst_gap_;
  std::uint32_t burst_len_;
  double intra_gap_;
  std::uint32_t size_;
  Rng rng_;
  eventsim::SimTime burst_start_ = 0.0;
  std::uint32_t in_burst_ = 0;
  bool first_ = true;
};

/// Replays a pre-generated arrival vector (must be time-sorted).
class TraceReplaySource final : public ArrivalSource {
 public:
  explicit TraceReplaySource(std::vector<PacketArrival> trace);

  [[nodiscard]] std::optional<PacketArrival> next() override;

  /// Replay the same trace with all gaps scaled by `factor` (>1 slows the
  /// trace down). Used by tests; Figure 7 instead rescales CPU speed.
  void set_time_scale(double factor) noexcept { scale_ = factor; }

 private:
  std::vector<PacketArrival> trace_;
  std::size_t pos_ = 0;
  double scale_ = 1.0;
};

/// Drains a source up to `horizon` seconds (or `max_count` arrivals).
[[nodiscard]] std::vector<PacketArrival> collect(
    ArrivalSource& source, eventsim::SimTime horizon,
    std::size_t max_count = static_cast<std::size_t>(-1));

}  // namespace ldlp::traffic
