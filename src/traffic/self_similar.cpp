#include "traffic/self_similar.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ldlp::traffic {

std::vector<PacketArrival> generate_self_similar_trace(
    const SelfSimilarConfig& config, SizeModel& sizes, std::uint64_t seed) {
  LDLP_ASSERT(config.mean_rate_per_sec > 0.0 && config.num_sources > 0);
  LDLP_ASSERT(config.alpha_on > 1.0 && config.alpha_off > 1.0);
  LDLP_ASSERT(config.on_fraction > 0.0 && config.on_fraction < 1.0);
  LDLP_ASSERT(config.duration_sec > 0.0 && config.mean_on_sec > 0.0);

  // Per-source peak emission rate such that the aggregate mean comes out
  // at mean_rate: aggregate = num_sources * peak_rate * on_fraction.
  const double peak_rate = config.mean_rate_per_sec /
                           (config.num_sources * config.on_fraction);
  const double mean_off_sec =
      config.mean_on_sec * (1.0 - config.on_fraction) / config.on_fraction;
  // Pareto mean is alpha*xm/(alpha-1)  =>  xm = mean*(alpha-1)/alpha.
  const double xm_on =
      config.mean_on_sec * (config.alpha_on - 1.0) / config.alpha_on;
  const double xm_off =
      mean_off_sec * (config.alpha_off - 1.0) / config.alpha_off;

  Rng master(seed);
  std::vector<PacketArrival> out;
  out.reserve(static_cast<std::size_t>(config.mean_rate_per_sec *
                                       config.duration_sec * 1.2) +
              16);

  for (std::uint32_t s = 0; s < config.num_sources; ++s) {
    Rng rng = master.split();
    // Random initial phase: start OFF for a random fraction of an OFF
    // period so sources are desynchronised.
    double t = rng.uniform() * xm_off;
    bool on = false;
    while (t < config.duration_sec) {
      if (on) {
        const double period = rng.pareto(config.alpha_on, xm_on);
        const double end = std::min(t + period, config.duration_sec);
        // Deterministic spacing within the ON period at the peak rate. The
        // first emission sits a random phase into the period so the
        // expected count is exactly period*peak_rate (starting at t would
        // add one emission per ON period and bias the mean rate upward).
        const double phase = rng.uniform() / peak_rate;
        for (double emit = t + phase; emit < end; emit += 1.0 / peak_rate) {
          out.push_back(PacketArrival{emit, 0});
        }
        t += period;
      } else {
        t += rng.pareto(config.alpha_off, xm_off);
      }
      on = !on;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const PacketArrival& a, const PacketArrival& b) {
              return a.time < b.time;
            });
  for (auto& arrival : out) arrival.size_bytes = sizes.sample(master);
  return out;
}

std::unique_ptr<TraceReplaySource> make_self_similar_source(
    const SelfSimilarConfig& config, SizeModel& sizes, std::uint64_t seed) {
  return std::make_unique<TraceReplaySource>(
      generate_self_similar_trace(config, sizes, seed));
}

}  // namespace ldlp::traffic
