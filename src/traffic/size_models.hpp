// Packet-size models.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace ldlp::traffic {

class SizeModel {
 public:
  virtual ~SizeModel() = default;
  [[nodiscard]] virtual std::uint32_t sample(Rng& rng) = 0;
  [[nodiscard]] virtual double mean() const = 0;
};

/// Every packet the same size. The paper's Figures 5/6 use 552 bytes
/// ("a common packet size in IP internetworks").
class FixedSize final : public SizeModel {
 public:
  explicit FixedSize(std::uint32_t bytes) : bytes_(bytes) {}
  [[nodiscard]] std::uint32_t sample(Rng&) override { return bytes_; }
  [[nodiscard]] double mean() const override { return bytes_; }

 private:
  std::uint32_t bytes_;
};

/// Discrete mixture of sizes with weights.
class MixtureSize final : public SizeModel {
 public:
  struct Component {
    std::uint32_t bytes;
    double weight;
  };

  explicit MixtureSize(std::vector<Component> components);

  [[nodiscard]] std::uint32_t sample(Rng& rng) override;
  [[nodiscard]] double mean() const override { return mean_; }

 private:
  std::vector<Component> cdf_;  ///< weight field holds cumulative prob.
  double mean_;
};

/// Size mixture approximating the 1989 Bellcore Ethernet traces the paper
/// uses for Figure 7: strongly bimodal — a mass of minimum-size packets
/// (acks, control) and a mass of large data packets, with a thin middle.
[[nodiscard]] std::unique_ptr<SizeModel> ethernet1989_sizes();

/// The paper's fixed 552-byte internet packet.
[[nodiscard]] std::unique_ptr<SizeModel> internet552_sizes();

}  // namespace ldlp::traffic
