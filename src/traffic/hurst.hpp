// Variance-time Hurst parameter estimation.
//
// Used by tests to verify that SelfSimilarSource actually produces
// long-range-dependent counts (H well above the 0.5 of a Poisson stream):
// bucket the arrival counts, aggregate at growing block sizes m, and fit
// log Var(X^(m)) ~ (2H - 2) log m, the classic variance-time plot from the
// Leland et al. paper.
#pragma once

#include <vector>

#include "traffic/arrivals.hpp"

namespace ldlp::traffic {

/// Estimate H from a trace. `base_bucket_sec` is the finest bucketing;
/// aggregation levels double until fewer than `min_blocks` blocks remain.
/// Returns 0.5 for degenerate inputs (empty or near-empty traces).
[[nodiscard]] double estimate_hurst_variance_time(
    const std::vector<PacketArrival>& trace, double base_bucket_sec = 0.1,
    std::size_t min_blocks = 16);

}  // namespace ldlp::traffic
