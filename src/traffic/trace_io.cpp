#include "traffic/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace ldlp::traffic {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool save_trace(const std::string& path,
                const std::vector<PacketArrival>& trace) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return false;
  for (const auto& arrival : trace) {
    if (std::fprintf(f.get(), "%.9f %" PRIu32 "\n", arrival.time,
                     arrival.size_bytes) < 0)
      return false;
  }
  return true;
}

std::vector<PacketArrival> load_trace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  std::vector<PacketArrival> out;
  if (f == nullptr) return out;
  double time = 0.0;
  std::uint32_t size = 0;
  while (std::fscanf(f.get(), "%lf %" SCNu32, &time, &size) == 2) {
    out.push_back(PacketArrival{time, size});
  }
  return out;
}

}  // namespace ldlp::traffic
