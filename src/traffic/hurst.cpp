#include "traffic/hurst.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace ldlp::traffic {

double estimate_hurst_variance_time(const std::vector<PacketArrival>& trace,
                                    double base_bucket_sec,
                                    std::size_t min_blocks) {
  if (trace.size() < 64 || base_bucket_sec <= 0.0) return 0.5;

  const double horizon = trace.back().time;
  const auto n_buckets =
      static_cast<std::size_t>(std::ceil(horizon / base_bucket_sec));
  if (n_buckets < min_blocks * 2) return 0.5;

  std::vector<double> counts(n_buckets, 0.0);
  for (const auto& arrival : trace) {
    auto b = static_cast<std::size_t>(arrival.time / base_bucket_sec);
    if (b >= n_buckets) b = n_buckets - 1;
    counts[b] += 1.0;
  }

  // Variance of the aggregated (block-mean) series at levels m = 1,2,4,...
  std::vector<double> log_m;
  std::vector<double> log_var;
  for (std::size_t m = 1; counts.size() / m >= min_blocks; m *= 2) {
    RunningStats stats;
    const std::size_t blocks = counts.size() / m;
    for (std::size_t b = 0; b < blocks; ++b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) sum += counts[b * m + i];
      stats.add(sum / static_cast<double>(m));
    }
    const double var = stats.variance();
    if (var <= 0.0) break;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(var));
  }
  if (log_m.size() < 3) return 0.5;

  // Least-squares slope of log_var against log_m.
  RunningStats mx;
  RunningStats my;
  for (double v : log_m) mx.add(v);
  for (double v : log_var) my.add(v);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < log_m.size(); ++i) {
    sxy += (log_m[i] - mx.mean()) * (log_var[i] - my.mean());
    sxx += (log_m[i] - mx.mean()) * (log_m[i] - mx.mean());
  }
  if (sxx == 0.0) return 0.5;
  const double beta = sxy / sxx;  // expected 2H - 2
  return 1.0 + beta / 2.0;
}

}  // namespace ldlp::traffic
