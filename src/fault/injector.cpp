#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace ldlp::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed ^ 0x1f1ec7ULL) {}

FaultInjector::~FaultInjector() { release_pool_pressure(); }

void FaultInjector::corrupt_bytes(std::vector<std::uint8_t>& bytes,
                                  std::uint32_t flips, std::size_t off) {
  if (off >= bytes.size()) return;
  // Bit flips whose net effect on a 16-bit ones-complement sum cancels
  // (paired flips in one bit column, opposite directions) slip past the
  // Internet checksums and would deliver corrupt data as if intact. On a
  // real wire the Ethernet FCS catches those; our frames carry none, so
  // the injector guarantees detectability instead: track the column sum
  // of the planned flips and break any accidental cancellation with one
  // extra flip (a single flip can never cancel on its own). Flips start
  // at `off` so a frame-scope caller can confine them to the checksummed
  // region — byte parity relative to the frame start matches the
  // checksum word pairing because the IP header begins at an even frame
  // offset (14).
  const std::size_t span = bytes.size() - off;
  const std::uint32_t n =
      static_cast<std::uint32_t>(rng_.bounded(flips)) + 1;
  std::int64_t delta = 0;
  const auto flip = [&](std::size_t at, std::uint32_t bit) {
    const auto mask = static_cast<std::uint8_t>(1u << bit);
    const std::uint32_t column = (at % 2 == 0) ? bit + 8 : bit;
    delta += ((bytes[at] & mask) != 0 ? -1 : 1) * (std::int64_t{1} << column);
    bytes[at] ^= mask;
  };
  for (std::uint32_t i = 0; i < n; ++i)
    flip(off + rng_.bounded(span), static_cast<std::uint32_t>(rng_.bounded(8)));
  if (((delta % 65535) + 65535) % 65535 == 0)
    flip(off + rng_.bounded(span), static_cast<std::uint32_t>(rng_.bounded(8)));
  ++stats_.corrupted;
}

FrameVerdict FaultInjector::on_frame(std::vector<std::uint8_t>& bytes) {
  FrameVerdict v;
  ++stats_.frames_seen;
  const double t = now();

  if (const Episode* e = plan_.active(FaultKind::kLossBurst, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.drop = true;
    ++stats_.dropped;
    return v;
  }
  if (const Episode* e = plan_.active(FaultKind::kGilbertElliott, t);
      e != nullptr) {
    // Two-state Markov channel (Gilbert-Elliott): advance the state once
    // per arriving frame, then lose the frame with the Bad-state rate.
    // The Good state is clean; mean burst length is `param` frames.
    if (!ge_bad_) {
      if (rng_.chance(e->magnitude)) {
        ge_bad_ = true;
        ++stats_.burst_entries;
      }
    } else if (rng_.chance(1.0 / std::max<std::uint32_t>(e->param, 1))) {
      ge_bad_ = false;
    }
    if (ge_bad_ && rng_.chance(e->rate)) {
      v.drop = true;
      ++stats_.dropped;
      ++stats_.burst_dropped;
      return v;
    }
  } else {
    ge_bad_ = false;  // channel heals between episodes
  }
  if (const Episode* e = plan_.active(FaultKind::kCorrupt, t);
      e != nullptr && rng_.chance(e->rate)) {
    // Corrupt only inside IPv4 payloads, where the software checksums
    // under test can (and per corrupt_bytes, always will) detect it. A
    // frame with no upper-layer checksum — ARP, notably — would accept
    // flipped bytes as truth and e.g. poison the ARP cache with a bad
    // MAC forever; on a real wire the FCS rejects such a frame at the
    // NIC, so model corruption of those frames as a drop.
    constexpr std::size_t kEthHeaderLen = 14;
    const bool ipv4 = bytes.size() > kEthHeaderLen && bytes[12] == 0x08 &&
                      bytes[13] == 0x00;
    if (ipv4) {
      corrupt_bytes(bytes, std::max<std::uint32_t>(e->param, 1),
                    kEthHeaderLen);
    } else {
      v.drop = true;
      ++stats_.dropped;
      return v;
    }
  }
  if (const Episode* e = plan_.active(FaultKind::kDelayJitter, t);
      e != nullptr && rng_.chance(e->rate)) {
    delayed_.push_back({t + rng_.uniform(0.0, e->magnitude),
                        std::move(bytes)});
    v.delayed = true;
    ++stats_.delayed;
    return v;
  }
  if (const Episode* e = plan_.active(FaultKind::kDuplicate, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.duplicate = true;
    ++stats_.duplicated;
  }
  if (const Episode* e = plan_.active(FaultKind::kReorder, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.reorder_depth = static_cast<std::uint32_t>(
        rng_.bounded(std::max<std::uint32_t>(e->param, 1))) + 1;
    ++stats_.reordered;
  }
  return v;
}

bool FaultInjector::link_blocked() const noexcept {
  const double t = now();
  if (plan_.active(FaultKind::kPartition, t) != nullptr) return true;
  if (plan_.active(FaultKind::kHostRestart, t) != nullptr) return true;
  if (const Episode* e = plan_.active(FaultKind::kLinkFlap, t);
      e != nullptr) {
    const double period = std::max(e->magnitude, 1e-9);
    const double phase = std::fmod(t - e->start, period);
    if (phase < e->rate * period) return true;
  }
  return false;
}

void FaultInjector::count_blocked_frame() noexcept {
  const double t = now();
  // Attribute to the most specific cause: a restart outage is also a
  // blackhole, but its losses belong to the restart counter.
  if (plan_.active(FaultKind::kHostRestart, t) != nullptr) {
    ++stats_.restart_dropped;
  } else if (plan_.active(FaultKind::kPartition, t) != nullptr) {
    ++stats_.partition_dropped;
  } else {
    ++stats_.flap_dropped;
  }
}

bool FaultInjector::host_restart_pending() noexcept {
  const Episode* e = plan_.active(FaultKind::kHostRestart, now());
  if (e == nullptr || e == last_restart_) return false;
  last_restart_ = e;
  ++stats_.host_restarts;
  return true;
}

MessageVerdict FaultInjector::on_message() {
  MessageVerdict v;
  const double t = now();
  if (const Episode* e = plan_.active(FaultKind::kLossBurst, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.drop = true;
    ++stats_.dropped;
    return v;
  }
  if (const Episode* e = plan_.active(FaultKind::kCorrupt, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.corrupt_flips = std::max<std::uint32_t>(e->param, 1);
  }
  if (const Episode* e = plan_.active(FaultKind::kDuplicate, t);
      e != nullptr && rng_.chance(e->rate)) {
    v.duplicate = true;
    ++stats_.duplicated;
  }
  return v;
}

std::vector<std::vector<std::uint8_t>> FaultInjector::collect_released() {
  std::vector<std::vector<std::uint8_t>> out;
  const double t = now();
  // Stable partition keeps release order deterministic.
  auto due = std::stable_partition(
      delayed_.begin(), delayed_.end(),
      [t](const Delayed& d) { return d.release_at > t; });
  for (auto it = due; it != delayed_.end(); ++it)
    out.push_back(std::move(it->bytes));
  delayed_.erase(due, delayed_.end());
  return out;
}

void FaultInjector::apply_pool_pressure(buf::MbufPool& pool) {
  const Episode* e = plan_.active(FaultKind::kPoolExhaustion, now());
  if (e == nullptr) {
    if (squeezed_pool_ == &pool) release_pool_pressure();
    return;
  }
  squeezed_pool_ = &pool;
  while (pool.mbufs_free() > e->param) {
    buf::Mbuf* m = pool.alloc();
    if (m == nullptr) break;
    held_.push_back(m);
    ++stats_.pool_squeezes;
  }
  stats_.mbufs_held_peak = std::max(stats_.mbufs_held_peak, held_.size());
}

void FaultInjector::release_pool_pressure() {
  if (squeezed_pool_ != nullptr) {
    for (buf::Mbuf* m : held_) (void)squeezed_pool_->free_one(m);
    held_.clear();
    squeezed_pool_ = nullptr;
  }
}

}  // namespace ldlp::fault
