// FaultInjector: executes a FaultPlan against live traffic.
//
// One injector serves three attachment points:
//   * NetDevice (frame scope): on_frame() decides drop / corrupt /
//     duplicate / reorder / delay for each arriving frame, and
//     device_stalled() freezes delivery during stall episodes. Delayed
//     frames are buffered here and handed back via collect_released().
//   * core layer graphs (message scope): on_message() gives the subset of
//     verdicts that make sense between layers (see FaultLayer).
//   * buf::MbufPool (allocator scope): apply_pool_pressure() grabs and
//     holds mbufs during a pool-exhaustion episode so the stack's
//     allocation-failure paths run, then gives them back when it ends.
//
// All randomness flows from the constructor seed; the injector reads time
// through an external clock pointer (the simulation's `now`), so a run is
// a pure function of (plan, seed, traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "buf/pool.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"

namespace ldlp::fault {

struct FaultStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t burst_dropped = 0;   ///< Gilbert-Elliott Bad-state losses.
  std::uint64_t burst_entries = 0;   ///< Good→Bad transitions taken.
  std::uint64_t pool_squeezes = 0;   ///< Mbufs taken hostage, cumulative.
  std::size_t mbufs_held_peak = 0;
  std::uint64_t partition_dropped = 0;  ///< Frames lost to a blackhole.
  std::uint64_t flap_dropped = 0;       ///< Frames lost to carrier-down.
  std::uint64_t restart_dropped = 0;    ///< Frames lost while host dark.
  std::uint64_t host_restarts = 0;      ///< Crash/reboot cycles executed.
};

/// Frame-scope decision. When `delayed` is set the injector has taken the
/// bytes; the device simply stops processing the frame.
struct FrameVerdict {
  bool drop = false;
  bool duplicate = false;
  bool delayed = false;
  std::uint32_t reorder_depth = 0;  ///< 0 = keep arrival position.
};

/// Message-scope decision (between layers there is no ring to reorder in
/// and no clock-driven release path, so only these three apply).
struct MessageVerdict {
  bool drop = false;
  bool duplicate = false;
  std::uint32_t corrupt_flips = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 1);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_clock(const double* now_sec) noexcept { now_sec_ = now_sec; }
  [[nodiscard]] double now() const noexcept {
    return now_sec_ != nullptr ? *now_sec_ : 0.0;
  }

  /// Frame-scope verdict; corruption mutates `bytes` in place, delay moves
  /// them into the injector's holdback queue.
  [[nodiscard]] FrameVerdict on_frame(std::vector<std::uint8_t>& bytes);

  /// Message-scope verdict for graph-level injection.
  [[nodiscard]] MessageVerdict on_message();

  [[nodiscard]] bool device_stalled() const noexcept {
    return plan_.active(FaultKind::kDeviceStall, now()) != nullptr;
  }

  /// True while frames must be lost in *both* directions: a partition
  /// episode, the carrier-down phase of a link-flap cycle, or the dark
  /// window of a host restart. Pure function of (plan, now) — no RNG —
  /// so TX and RX observe the same outages and schedules stay shrinkable.
  [[nodiscard]] bool link_blocked() const noexcept;

  /// Bump the per-cause blocked-frame counter; the device calls this for
  /// each frame it discards because link_blocked() held.
  void count_blocked_frame() noexcept;

  /// True while a host-restart episode is active (the host is dark).
  [[nodiscard]] bool host_down() const noexcept {
    return plan_.active(FaultKind::kHostRestart, now()) != nullptr;
  }

  /// One-shot crash trigger: returns true exactly once per host-restart
  /// episode, at the first query after the episode begins. The host wipes
  /// its protocol state when it sees true (Host::advance does).
  [[nodiscard]] bool host_restart_pending() noexcept;

  /// Delayed frames whose release time has passed, in release order.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> collect_released();
  [[nodiscard]] std::size_t delayed_pending() const noexcept {
    return delayed_.size();
  }

  /// Drive the pool-exhaustion episode: while active, allocate-and-hold
  /// mbufs until only `param` remain free; once it ends, return them all.
  /// Call once per simulation step (Host::advance does).
  void apply_pool_pressure(buf::MbufPool& pool);
  /// Return every held mbuf immediately (also runs on destruction).
  void release_pool_pressure();

  /// True once the plan's horizon has passed and nothing is still held
  /// back — the point after which scenarios must converge.
  [[nodiscard]] bool faults_cleared() const noexcept {
    return now() >= plan_.end_time() && delayed_.empty() && held_.empty();
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Deterministic child stream for helpers (e.g. FaultLayer bit flips).
  [[nodiscard]] Rng fork_rng() noexcept { return rng_.split(); }

 private:
  struct Delayed {
    double release_at;
    std::vector<std::uint8_t> bytes;
  };

  void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint32_t flips,
                     std::size_t off);

  FaultPlan plan_;
  Rng rng_;
  const double* now_sec_ = nullptr;
  bool ge_bad_ = false;  ///< Gilbert-Elliott channel state (Bad = bursty).
  const Episode* last_restart_ = nullptr;  ///< Episode already crashed for.
  std::vector<Delayed> delayed_;
  buf::MbufPool* squeezed_pool_ = nullptr;
  std::vector<buf::Mbuf*> held_;
  FaultStats stats_;
};

}  // namespace ldlp::fault
