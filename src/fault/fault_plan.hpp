// FaultPlan: a deterministic, seed-driven timeline of fault episodes.
//
// The paper's claim — drain-all batching keeps latency low *under load* —
// matters most in exactly the regimes where real stacks are also losing,
// corrupting, duplicating and reordering frames. A FaultPlan describes
// such a regime as data: an ordered set of episodes, each a time window
// during which one fault kind is active at some intensity. Plans are pure
// values; the same (plan, seed) pair always produces the same packet-level
// fault sequence, so any failing chaos run reproduces from its printed
// seed alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ldlp::fault {

enum class FaultKind : std::uint8_t {
  kLossBurst,       ///< Drop arriving frames with probability `rate`.
  kCorrupt,         ///< Flip up to `param` random bits per affected frame.
  kDuplicate,       ///< Deliver affected frames twice.
  kReorder,         ///< Displace affected frames up to `param` slots back.
  kDelayJitter,     ///< Hold affected frames up to `magnitude` seconds.
  kDeviceStall,     ///< Device stops delivering; frames queue in its ring.
  kPoolExhaustion,  ///< Squeeze the mbuf pool down to `param` free mbufs.
  kGilbertElliott,  ///< Two-state burst-loss channel: Good→Bad with
                    ///< per-frame probability `magnitude`, Bad→Good with
                    ///< probability 1/`param` (mean burst of `param`
                    ///< frames), dropping at `rate` while Bad.
  kPartition,       ///< Bidirectional blackhole: the attached host's
                    ///< device drops every frame in both directions for
                    ///< the episode (rate/param/magnitude unused).
  kLinkFlap,        ///< Carrier down/up cycles: every `magnitude` seconds
                    ///< the link repeats one cycle whose first `rate`
                    ///< fraction is carrier-down; frames in either
                    ///< direction during a down phase are lost.
  kHostRestart,     ///< Host crash + reboot: protocol state (TCP PCBs,
                    ///< sockets, ARP, reassembly, device ring) is wiped
                    ///< at episode start and the host is dark — dropping
                    ///< all frames — until the episode ends.
  kClockSkew,       ///< Host virtual clock offset by `magnitude` seconds
                    ///< while active (negative skew holds the clock
                    ///< still; it never runs backwards).
  kClockDrift,      ///< Host virtual clock accrues `magnitude` extra
                    ///< seconds per real second; the offset persists
                    ///< after the episode ends.
  kClockStall,      ///< Host virtual clock frozen for the episode; at
                    ///< the end it snaps forward and every timer that
                    ///< came due during the freeze fires in one burst.
  kTimerStorm,      ///< Spurious timer wakeups: up to `param` not-yet-
                    ///< due timers fire early per host tick while
                    ///< active (time::TimerWheel shedding applies).
};

inline constexpr std::size_t kFaultKindCount = 15;

/// Kinds the original (pre-recovery) chaos soaks draw from. Keeping the
/// legacy random() sampler on this prefix preserves every historical
/// (seed → plan) mapping; the recovery kinds only enter plans through
/// random_heal() or explicit episodes.
inline constexpr std::size_t kLegacyFaultKindCount = 8;

/// Prefix random_heal() draws from (frame + healing kinds). The clock
/// kinds past it only enter plans through random_clocks() or explicit
/// episodes, so every healed-soak seed keeps its historical plan too.
inline constexpr std::size_t kHealFaultKindCount = 11;

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Inverse of fault_kind_name (schedule files store kinds by name).
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(
    std::string_view name) noexcept;

/// Topology scope of an episode. kNone keeps the historical meaning —
/// the episode applies at whatever attachment point the injector serves
/// (a host's device, graph or pool). The other scopes only have meaning
/// on a fabric (ldlp::net): a link episode hits one link, a switch
/// episode hits every link incident to that switch (a correlated failure
/// that partitions the whole subtree below it), a rack episode every
/// link of that rack's leaf switch, a site episode every link inside
/// that site, and a host episode the host's access link(s).
enum class FaultDomain : std::uint8_t {
  kNone,
  kLink,
  kSwitch,
  kRack,
  kSite,
  kHost,
};

[[nodiscard]] const char* fault_domain_name(FaultDomain domain) noexcept;
[[nodiscard]] std::optional<FaultDomain> fault_domain_from_name(
    std::string_view name) noexcept;

/// Direction mask for domain-scoped outages. kBoth is the classic
/// bidirectional cut; the one-sided values model asymmetric partitions
/// (frames pass one way, vanish the other — the gray failure that makes
/// half-open connections).
inline constexpr std::uint8_t kDirBoth = 0;
inline constexpr std::uint8_t kDirAtoB = 1;  ///< Only the a->b direction fails.
inline constexpr std::uint8_t kDirBtoA = 2;  ///< Only the b->a direction fails.

struct Episode {
  FaultKind kind = FaultKind::kLossBurst;
  double start = 0.0;        ///< Seconds, inclusive.
  double end = 0.0;          ///< Seconds, exclusive.
  double rate = 1.0;         ///< Per-frame probability while active.
  std::uint32_t param = 0;   ///< Kind-specific integer (see FaultKind docs).
  double magnitude = 0.0;    ///< Kind-specific scalar (delay bound, ...).
  /// Fabric scope. kNone (the default, and the only value per-host
  /// injectors ever see) preserves every historical episode's meaning.
  FaultDomain domain = FaultDomain::kNone;
  std::uint32_t domain_index = 0;  ///< Which link/switch/rack/site/host.
  std::uint8_t direction = kDirBoth;  ///< Outage direction (domain scopes).

  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= start && t < end;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(Episode episode);

  /// A randomized-but-seeded plan: `episodes` fault windows drawn over
  /// [0, horizon_sec), with kind, intensity and placement all derived
  /// from `seed`. Windows may overlap — compound adversity is the point.
  /// Draws only the legacy kinds (see kLegacyFaultKindCount) so existing
  /// seeds keep their exact historical plans.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        double horizon_sec,
                                        std::size_t episodes = 6);

  /// Like random(), but the draw includes the network-healing kinds —
  /// partition and link_flap always, host_restart when `allow_restart`.
  /// Recovery episodes are kept short relative to the horizon so the
  /// post-fault convergence budget stays meaningful.
  [[nodiscard]] static FaultPlan random_heal(std::uint64_t seed,
                                             double horizon_sec,
                                             std::size_t episodes = 6,
                                             bool allow_restart = true);

  /// Clock adversity for one host: `episodes` windows drawn over
  /// [0, horizon_sec) from the clock kinds only (skew/drift/stall/
  /// timer-storm). Combined per-host with the frame/topology kinds by
  /// the `clocks` soak scenario; kept out of random()/random_heal() so
  /// historical seeds keep their exact plans.
  [[nodiscard]] static FaultPlan random_clocks(std::uint64_t seed,
                                               double horizon_sec,
                                               std::size_t episodes = 3);

  [[nodiscard]] const std::vector<Episode>& episodes() const noexcept {
    return episodes_;
  }
  [[nodiscard]] bool empty() const noexcept { return episodes_.empty(); }

  /// End of the last episode; 0 for an empty plan.
  [[nodiscard]] double end_time() const noexcept;

  [[nodiscard]] bool any_active(double t) const noexcept;

  /// First active episode of `kind` at time `t`, or nullptr.
  [[nodiscard]] const Episode* active(FaultKind kind, double t) const noexcept;

  /// Human-readable schedule, one episode per line — printed by the chaos
  /// harness so a failing run's adversity is visible next to its seed.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Episode> episodes_;
};

}  // namespace ldlp::fault
