// FaultLayer: a core::Layer that injects message-scope faults.
//
// Spliced between any two layers of a StackGraph, it subjects every
// message crossing the seam to the injector's loss / corruption /
// duplication episodes — the adversity the paper's schedulers never see
// in the clean benchmarks. It is transparent when no episode is active,
// so chaos graphs and clean graphs share one topology.
#pragma once

#include "core/layer.hpp"
#include "fault/injector.hpp"

namespace ldlp::fault {

struct FaultLayerStats {
  std::uint64_t passed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
};

class FaultLayer final : public core::Layer {
 public:
  explicit FaultLayer(FaultInjector& injector, std::string name = "fault");

  [[nodiscard]] const FaultLayerStats& fault_stats() const noexcept {
    return fstats_;
  }

 protected:
  void process(core::Message msg) override;

 private:
  FaultInjector& injector_;
  FaultLayerStats fstats_;
};

}  // namespace ldlp::fault
