#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"

namespace ldlp::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelayJitter: return "delay-jitter";
    case FaultKind::kDeviceStall: return "device-stall";
    case FaultKind::kPoolExhaustion: return "pool-exhaustion";
    case FaultKind::kGilbertElliott: return "gilbert-elliott";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kHostRestart: return "host-restart";
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kClockDrift: return "clock-drift";
    case FaultKind::kClockStall: return "clock-stall";
    case FaultKind::kTimerStorm: return "timer-storm";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

const char* fault_domain_name(FaultDomain domain) noexcept {
  switch (domain) {
    case FaultDomain::kNone: return "none";
    case FaultDomain::kLink: return "link";
    case FaultDomain::kSwitch: return "switch";
    case FaultDomain::kRack: return "rack";
    case FaultDomain::kSite: return "site";
    case FaultDomain::kHost: return "host";
  }
  return "?";
}

std::optional<FaultDomain> fault_domain_from_name(
    std::string_view name) noexcept {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(FaultDomain::kHost);
       ++i) {
    const auto domain = static_cast<FaultDomain>(i);
    if (name == fault_domain_name(domain)) return domain;
  }
  return std::nullopt;
}

FaultPlan& FaultPlan::add(Episode episode) {
  episodes_.push_back(episode);
  std::sort(episodes_.begin(), episodes_.end(),
            [](const Episode& a, const Episode& b) { return a.start < b.start; });
  return *this;
}

namespace {

// Shared by random() and random_heal(): fill in the kind-specific knobs
// for one episode whose kind and window are already chosen.
void parameterize(Episode& e, Rng& rng, double horizon_sec, double duration) {
  switch (e.kind) {
      case FaultKind::kLossBurst:
        e.rate = rng.uniform(0.2, 0.9);
        break;
      case FaultKind::kCorrupt:
        e.rate = rng.uniform(0.1, 0.5);
        e.param = static_cast<std::uint32_t>(rng.bounded(4) + 1);
        break;
      case FaultKind::kDuplicate:
        e.rate = rng.uniform(0.1, 0.4);
        break;
      case FaultKind::kReorder:
        e.rate = rng.uniform(0.2, 0.6);
        e.param = static_cast<std::uint32_t>(rng.bounded(4) + 1);
        break;
      case FaultKind::kDelayJitter:
        e.rate = rng.uniform(0.2, 0.6);
        e.magnitude = rng.uniform(0.01, 0.10);
        break;
      case FaultKind::kDeviceStall:
        // A full-window blackout, kept short so the ring (not the plan)
        // is what bounds the backlog.
        e.end = e.start + std::min(duration, horizon_sec * 0.15);
        break;
      case FaultKind::kPoolExhaustion:
        e.param = static_cast<std::uint32_t>(rng.bounded(17));  // mbufs left
        break;
      case FaultKind::kGilbertElliott:
        e.rate = rng.uniform(0.5, 0.95);                // loss while Bad
        e.magnitude = rng.uniform(0.02, 0.20);          // Good→Bad per frame
        e.param = static_cast<std::uint32_t>(rng.bounded(7) + 2);  // burst len
        break;
      case FaultKind::kPartition:
        // Total blackhole; keep it short so the convergence budget after
        // end_time() dominates the run, not the outage itself.
        e.rate = 1.0;
        e.end = e.start + std::min(duration, horizon_sec * 0.20);
        break;
      case FaultKind::kLinkFlap:
        e.rate = rng.uniform(0.3, 0.7);                 // down duty-cycle
        e.magnitude = rng.uniform(0.02, 0.10);          // cycle period (sec)
        break;
      case FaultKind::kHostRestart:
        // One crash at episode start; the host stays dark until the end.
        e.end = e.start + std::min(duration, horizon_sec * 0.15);
        break;
      case FaultKind::kClockSkew:
        // Both directions; magnitudes big enough to matter against RTO
        // ladders (0.5–8 s) but small against the soak horizon.
        e.magnitude = rng.uniform(-0.4, 0.4);
        break;
      case FaultKind::kClockDrift:
        e.magnitude = rng.uniform(-0.3, 0.5);  // extra sec per real sec
        break;
      case FaultKind::kClockStall:
        // Kept short: every timer due during the stall fires in one
        // recovery burst at episode end, and the convergence budget
        // after end_time() has to absorb it.
        e.end = e.start + std::min(duration, horizon_sec * 0.20);
        break;
      case FaultKind::kTimerStorm:
        e.param = static_cast<std::uint32_t>(rng.bounded(6) + 1);
        break;
    }
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed, double horizon_sec,
                            std::size_t episodes) {
  Rng rng(seed ^ 0xfa017b00c5ULL);
  FaultPlan plan;
  for (std::size_t i = 0; i < episodes; ++i) {
    Episode e;
    // Legacy kinds only: drawing from the full kind set would silently
    // remap every historical seed's plan.
    e.kind = static_cast<FaultKind>(rng.bounded(kLegacyFaultKindCount));
    const double duration = horizon_sec * rng.uniform(0.10, 0.30);
    e.start = rng.uniform(0.0, horizon_sec - duration);
    e.end = e.start + duration;
    parameterize(e, rng, horizon_sec, duration);
    plan.add(e);
  }
  return plan;
}

FaultPlan FaultPlan::random_heal(std::uint64_t seed, double horizon_sec,
                                 std::size_t episodes, bool allow_restart) {
  Rng rng(seed ^ 0x4ea1b0075ULL);
  FaultPlan plan;
  // Heal prefix only (clock kinds excluded): historical healed-soak
  // seeds must keep their exact plans.
  const std::size_t kinds =
      allow_restart ? kHealFaultKindCount : kHealFaultKindCount - 1;
  for (std::size_t i = 0; i < episodes; ++i) {
    Episode e;
    if (i == 0) {
      // Guarantee at least one healing episode per plan; otherwise small
      // plans frequently degenerate into pure legacy adversity.
      const std::size_t heal_kinds = kinds - kLegacyFaultKindCount;
      e.kind = static_cast<FaultKind>(kLegacyFaultKindCount +
                                      rng.bounded(heal_kinds));
    } else {
      e.kind = static_cast<FaultKind>(rng.bounded(kinds));
    }
    const double duration = horizon_sec * rng.uniform(0.10, 0.30);
    e.start = rng.uniform(0.0, horizon_sec - duration);
    e.end = e.start + duration;
    parameterize(e, rng, horizon_sec, duration);
    plan.add(e);
  }
  return plan;
}

FaultPlan FaultPlan::random_clocks(std::uint64_t seed, double horizon_sec,
                                   std::size_t episodes) {
  Rng rng(seed ^ 0xc10cfa017ULL);
  FaultPlan plan;
  const std::size_t clock_kinds = kFaultKindCount - kHealFaultKindCount;
  for (std::size_t i = 0; i < episodes; ++i) {
    Episode e;
    e.kind = static_cast<FaultKind>(kHealFaultKindCount +
                                    rng.bounded(clock_kinds));
    const double duration = horizon_sec * rng.uniform(0.10, 0.30);
    e.start = rng.uniform(0.0, horizon_sec - duration);
    e.end = e.start + duration;
    parameterize(e, rng, horizon_sec, duration);
    plan.add(e);
  }
  return plan;
}

double FaultPlan::end_time() const noexcept {
  double end = 0.0;
  for (const Episode& e : episodes_) end = std::max(end, e.end);
  return end;
}

bool FaultPlan::any_active(double t) const noexcept {
  for (const Episode& e : episodes_) {
    if (e.active_at(t)) return true;
  }
  return false;
}

const Episode* FaultPlan::active(FaultKind kind, double t) const noexcept {
  for (const Episode& e : episodes_) {
    if (e.kind == kind && e.active_at(t)) return &e;
  }
  return nullptr;
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[160];
  for (const Episode& e : episodes_) {
    std::snprintf(line, sizeof line,
                  "  [%6.3f, %6.3f) %-15s rate=%.2f param=%u mag=%.3f\n",
                  e.start, e.end, fault_kind_name(e.kind), e.rate, e.param,
                  e.magnitude);
    out += line;
    if (e.domain != FaultDomain::kNone) {
      std::snprintf(line, sizeof line, "      domain %s %u%s\n",
                    fault_domain_name(e.domain), e.domain_index,
                    e.direction == kDirAtoB   ? " (a->b only)"
                    : e.direction == kDirBtoA ? " (b->a only)"
                                              : "");
      out += line;
    }
  }
  return out;
}

}  // namespace ldlp::fault
