#include "fault/fault_layer.hpp"

namespace ldlp::fault {

FaultLayer::FaultLayer(FaultInjector& injector, std::string name)
    : core::Layer(std::move(name)), injector_(injector) {}

void FaultLayer::process(core::Message msg) {
  const MessageVerdict v = injector_.on_message();
  if (v.drop) {
    ++fstats_.dropped;
    return;  // destructor returns the chain to its pool
  }
  if (v.corrupt_flips != 0) {
    const std::uint32_t len = msg.packet.length();
    if (len != 0) {
      Rng flip_rng = injector_.fork_rng();
      for (std::uint32_t i = 0; i < v.corrupt_flips; ++i) {
        const auto at = static_cast<std::uint32_t>(flip_rng.bounded(len));
        std::uint8_t byte = 0;
        if (!msg.packet.copy_out(at, {&byte, 1})) break;
        byte ^= static_cast<std::uint8_t>(1u << flip_rng.bounded(8));
        if (!msg.packet.copy_in(at, {&byte, 1})) break;
      }
      ++fstats_.corrupted;
    }
  }
  if (v.duplicate && msg.packet.pool() != nullptr) {
    std::vector<std::uint8_t> bytes(msg.packet.length());
    if (msg.packet.copy_out(0, bytes)) {
      buf::Packet copy = buf::Packet::from_bytes(*msg.packet.pool(), bytes);
      if (copy) {
        core::Message dup(std::move(copy), msg.arrival);
        dup.flow_id = msg.flow_id;
        ++fstats_.duplicated;
        emit(std::move(dup));
      }
    }
  }
  ++fstats_.passed;
  emit(std::move(msg));
}

}  // namespace ldlp::fault
