#include "synth/synth_stack.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/grouping.hpp"
#include "sim/address_space.hpp"

namespace ldlp::synth {

SynthStack::SynthStack(const SynthConfig& config)
    : cfg_(config), cpu_(config.cpu) {
  LDLP_ASSERT(cfg_.num_layers > 0 && cfg_.buffer_limit > 0);

  if (cfg_.batch_limit != 0) {
    batch_limit_ = cfg_.batch_limit;
  } else if (cfg_.mode == SynthMode::kLdlp) {
    const core::StackFootprint footprint{
        cfg_.num_layers, cfg_.layer_code_bytes, cfg_.layer_data_bytes,
        cfg_.typical_message_bytes};
    batch_limit_ = core::estimate_blocking(footprint, cfg_.cpu.memory.icache,
                                           cfg_.cpu.memory.dcache)
                       .batch_limit;
  } else {
    batch_limit_ = 1;
  }

  // Layer grouping (section 6).
  if (cfg_.layers_per_group == 0) {
    groups_ = core::plan_groups(
        std::vector<std::uint32_t>(cfg_.num_layers, cfg_.layer_code_bytes),
        cfg_.cpu.memory.icache.size_bytes);
  } else {
    for (std::uint32_t remaining = cfg_.num_layers; remaining != 0;) {
      const std::uint32_t take = std::min(cfg_.layers_per_group, remaining);
      groups_.push_back(take);
      remaining -= take;
    }
  }

  // Random placement per run (paper: "100 runs, each with a different
  // random placement in memory"). Code and data live in disjoint address
  // spaces because the machine has split caches; each space is sized so
  // random placement is easy but conflicts in the direct-mapped caches
  // still occur with realistic probability.
  Rng rng(cfg_.layout_seed);
  sim::AddressSpace code_space(1ull << 24, 32);
  sim::AddressSpace data_space(1ull << 24, 32);
  layer_code_.reserve(cfg_.num_layers);
  layer_data_.reserve(cfg_.num_layers);
  for (std::uint32_t i = 0; i < cfg_.num_layers; ++i) {
    layer_code_.push_back(
        code_space.allocate("L" + std::to_string(i) + ".text",
                            cfg_.layer_code_bytes, rng));
    layer_data_.push_back(
        data_space.allocate("L" + std::to_string(i) + ".data",
                            cfg_.layer_data_bytes, rng));
    if (cfg_.duplex) {
      layer_tx_code_.push_back(
          code_space.allocate("L" + std::to_string(i) + ".tx_text",
                              cfg_.layer_code_bytes, rng));
    }
  }
  if (cfg_.duplex) {
    app_code_ = code_space.allocate("app.text", cfg_.app_code_bytes, rng);
  }
  buffer_slots_.reserve(cfg_.buffer_limit);
  free_slots_.reserve(cfg_.buffer_limit);
  for (std::uint32_t i = 0; i < cfg_.buffer_limit; ++i) {
    buffer_slots_.push_back(data_space.allocate(
        "buf" + std::to_string(i), cfg_.max_message_bytes, rng));
    free_slots_.push_back(cfg_.buffer_limit - 1 - i);
  }
}

void SynthStack::charge_app_message(const Pending& msg) {
  cpu_.memory().set_scope(cfg_.num_layers);  // "app" scope, above the layers
  cpu_.ifetch(app_code_.base, cfg_.app_code_bytes);
  cpu_.read(buffer_slots_[msg.slot].base, std::min(msg.size, 128u));
  cpu_.execute(cfg_.app_cycles_per_msg);
}

void SynthStack::charge_layer_message(std::uint32_t layer, const Pending& msg,
                                      bool touch_message_data,
                                      int direction) {
  // Every instruction in the layer's working set executes at least once:
  // fetch the whole code region through the I-cache.
  cpu_.memory().set_scope(layer);
  const sim::Region& code =
      direction == 0 ? layer_code_[layer] : layer_tx_code_[layer];
  cpu_.ifetch(code.base, cfg_.layer_code_bytes);
  // The layer's private data.
  cpu_.read(layer_data_[layer].base, cfg_.layer_data_bytes);
  std::uint64_t cycles = cfg_.layer_fixed_cycles;
  if (touch_message_data) {
    // The data loop walks the message contents.
    cpu_.read(buffer_slots_[msg.slot].base, msg.size);
    cycles += static_cast<std::uint64_t>(
        std::llround(cfg_.data_loop_cycles_per_byte * msg.size));
  }
  cpu_.execute(cycles);
}

std::uint64_t SynthStack::process_batch(const std::vector<Pending>& batch) {
  const std::uint64_t start = cpu_.busy_cycles();
  switch (cfg_.mode) {
    case SynthMode::kConventional:
      // Outer loop over messages, inner over layers (then, in duplex
      // mode, the application and the transmit descent, still per
      // message).
      for (const Pending& msg : batch) {
        for (std::uint32_t layer = 0; layer < cfg_.num_layers; ++layer)
          charge_layer_message(layer, msg, /*touch_message_data=*/true);
        if (cfg_.duplex) {
          charge_app_message(msg);
          for (std::uint32_t layer = cfg_.num_layers; layer-- > 0;)
            charge_layer_message(layer, msg, /*touch_message_data=*/true,
                                 /*direction=*/1);
        }
      }
      break;
    case SynthMode::kIlp:
      // Integrated layer processing: per-layer data loops are fused, so
      // the message contents are loaded (and their loop cycles charged)
      // exactly once per direction; layer code behaves as conventionally.
      for (const Pending& msg : batch) {
        charge_layer_message(0, msg, /*touch_message_data=*/true);
        for (std::uint32_t layer = 1; layer < cfg_.num_layers; ++layer)
          charge_layer_message(layer, msg, /*touch_message_data=*/false);
        if (cfg_.duplex) {
          charge_app_message(msg);
          charge_layer_message(cfg_.num_layers - 1, msg,
                               /*touch_message_data=*/true, /*direction=*/1);
          for (std::uint32_t layer = cfg_.num_layers - 1; layer-- > 0;)
            charge_layer_message(layer, msg, /*touch_message_data=*/false,
                                 /*direction=*/1);
        }
      }
      break;
    case SynthMode::kLdlp: {
      // Blocked: outer loop over layer *groups*, inner over messages, the
      // layers of a group running back-to-back per message. Queue
      // hand-off cost is paid once per message per group boundary —
      // grouping co-resident layers saves hand-offs (section 6).
      std::uint32_t base = 0;
      for (const std::uint32_t group : groups_) {
        for (const Pending& msg : batch) {
          for (std::uint32_t layer = base; layer < base + group; ++layer)
            charge_layer_message(layer, msg, /*touch_message_data=*/true);
          cpu_.execute(cfg_.queue_cost_cycles);
        }
        base += group;
      }
      if (cfg_.duplex) {
        // Application pass over the whole batch, then the blocked
        // transmit descent, top layer first.
        for (const Pending& msg : batch) {
          charge_app_message(msg);
          cpu_.execute(cfg_.queue_cost_cycles);
        }
        for (std::uint32_t layer = cfg_.num_layers; layer-- > 0;) {
          for (const Pending& msg : batch) {
            charge_layer_message(layer, msg, /*touch_message_data=*/true,
                                 /*direction=*/1);
            cpu_.execute(cfg_.queue_cost_cycles);
          }
        }
      }
      break;
    }
  }
  return cpu_.busy_cycles() - start;
}

RunResult SynthStack::run(traffic::ArrivalSource& source,
                          eventsim::SimTime horizon) {
  RunResult result;
  result.batch_limit = batch_limit_;
  eventsim::LatencyRecorder latency;

  std::deque<Pending> queue;
  std::vector<Pending> batch;
  batch.reserve(batch_limit_);

  const std::uint64_t misses_i0 = cpu_.memory().icache().stats().misses;
  const std::uint64_t misses_d0 = cpu_.memory().dcache().stats().misses;
  const std::uint64_t cycles0 = cpu_.busy_cycles();

  std::uint64_t batches = 0;
  eventsim::SimTime now = 0.0;
  eventsim::SimTime server_free_at = 0.0;

  auto admit = [&](const traffic::PacketArrival& arrival) {
    ++result.offered;
    if (free_slots_.empty() ||
        queue.size() >= cfg_.buffer_limit) {
      ++result.dropped;
      latency.record_drop();
      return;
    }
    Pending p;
    p.arrival = arrival.time;
    p.size = std::min(arrival.size_bytes, cfg_.max_message_bytes);
    p.slot = free_slots_.back();
    free_slots_.pop_back();
    queue.push_back(p);
  };

  auto next_arrival = source.next();

  for (;;) {
    const bool server_busy = now < server_free_at;
    if (server_busy) {
      // Admit arrivals that land while the server works, then jump to the
      // completion instant.
      if (next_arrival.has_value() && next_arrival->time <= horizon &&
          next_arrival->time <= server_free_at) {
        now = next_arrival->time;
        admit(*next_arrival);
        next_arrival = source.next();
        continue;
      }
      now = server_free_at;
      // Completion: the batch in flight finishes now.
      for (const Pending& msg : batch) {
        latency.record_completion(msg.arrival, now);
        free_slots_.push_back(msg.slot);
      }
      result.completed += batch.size();
      batch.clear();
      continue;
    }

    if (!queue.empty()) {
      // Take all available messages up to the blocking limit.
      const std::size_t take =
          cfg_.mode == SynthMode::kLdlp
              ? std::min<std::size_t>(queue.size(), batch_limit_)
              : 1;
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(queue.front());
        queue.pop_front();
      }
      const std::uint64_t cycles = process_batch(batch);
      ++batches;
      server_free_at = now + cpu_.seconds(cycles);
      continue;
    }

    // Idle and empty: advance to the next arrival, or finish.
    if (next_arrival.has_value() && next_arrival->time <= horizon) {
      now = std::max(now, next_arrival->time);
      admit(*next_arrival);
      next_arrival = source.next();
      continue;
    }
    break;
  }

  result.mean_latency_sec = latency.mean_latency();
  result.p50_latency_sec = latency.p50_latency();
  result.p99_latency_sec = latency.p99_latency();
  result.max_latency_sec = latency.max_latency();
  if (result.completed != 0) {
    result.i_misses_per_msg =
        static_cast<double>(cpu_.memory().icache().stats().misses - misses_i0) /
        static_cast<double>(result.completed);
    result.d_misses_per_msg =
        static_cast<double>(cpu_.memory().dcache().stats().misses - misses_d0) /
        static_cast<double>(result.completed);
    result.mean_batch = batches != 0 ? static_cast<double>(result.completed) /
                                           static_cast<double>(batches)
                                     : 0.0;
  }
  const double elapsed = std::max(now, horizon);
  result.busy_fraction =
      elapsed > 0.0
          ? cpu_.seconds(cpu_.busy_cycles() - cycles0) / elapsed
          : 0.0;
  return result;
}

}  // namespace ldlp::synth
