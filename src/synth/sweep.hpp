// Multi-run parameter sweeps over the synthetic stack.
//
// The paper averages 100 one-second runs per point, each with a fresh
// random memory layout (section 4). These helpers run that protocol for
// an arrival-rate sweep (Figures 5 and 6 share one sweep) and a CPU-clock
// sweep over a fixed arrival trace (Figure 7).
#pragma once

#include <cstdint>
#include <vector>

#include "synth/synth_stack.hpp"
#include "traffic/arrivals.hpp"

namespace ldlp::synth {

struct SweepPoint {
  double x = 0.0;  ///< Arrival rate (msgs/sec) or CPU clock (Hz).
  RunResult mean;  ///< Field-wise mean over runs.
};

struct SweepOptions {
  std::uint32_t runs = 100;        ///< Runs per point (fresh layout each).
  double run_seconds = 1.0;        ///< Horizon per run.
  std::uint64_t seed = 0x5eed;     ///< Master seed (layouts + arrivals).
};

/// Figures 5/6: Poisson arrivals of 552-byte messages, rate sweep.
[[nodiscard]] std::vector<SweepPoint> sweep_poisson_rates(
    const SynthConfig& base, const std::vector<double>& rates,
    const SweepOptions& options);

/// Figure 7: fixed arrival trace, CPU clock sweep. The trace is replayed
/// identically at every clock speed; only service times change.
[[nodiscard]] std::vector<SweepPoint> sweep_cpu_clock(
    const SynthConfig& base, const std::vector<traffic::PacketArrival>& trace,
    const std::vector<double>& clocks_hz, const SweepOptions& options);

/// Field-wise mean of several results (latency fields are averaged over
/// runs; counts are summed then divided — i.e. also means).
[[nodiscard]] RunResult average(const std::vector<RunResult>& results);

}  // namespace ldlp::synth
