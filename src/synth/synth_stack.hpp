// The paper's section 4 synthetic benchmark.
//
// A five-layer protocol stack runs on the simulated machine (sim::CpuModel)
// and is driven by an arrival process. Each layer has 6 KB of code and 256
// bytes of private data; processing one message through one layer executes
// 1652 cycles of instructions (including a 40-instruction loop over the
// message contents at 0.5 cycles/byte for the 552-byte reference message)
// and touches the layer's whole code and data footprint plus the message
// bytes. Every primary-cache miss stalls the CPU.
//
// Three schedules, the three columns of the paper's Figures 2 and 3:
//   kConventional — each arriving message is carried through all layers
//     before the next is started.
//   kIlp — integrated layer processing: still one message at a time, but
//     the per-layer data loops are fused so message bytes are loaded once
//     for all layers instead of once per layer. (Layer *code* locality is
//     unchanged — which is exactly the paper's point about why ILP does
//     not help small-message protocols.)
//   kLdlp — the server takes *all* currently queued messages (capped by
//     the data-cache blocking estimate) and runs them layer by layer.
//
// Each construction randomises the placement of layer code, layer data and
// message buffers in memory (AddressSpace), as the paper does per run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/blocking.hpp"
#include "core/stack_graph.hpp"
#include "eventsim/latency_recorder.hpp"
#include "sim/address_space.hpp"
#include "sim/cpu_model.hpp"
#include "traffic/arrivals.hpp"

namespace ldlp::synth {

enum class SynthMode : std::uint8_t { kConventional, kIlp, kLdlp };

[[nodiscard]] constexpr SynthMode from_sched(core::SchedMode mode) noexcept {
  return mode == core::SchedMode::kLdlp ? SynthMode::kLdlp
                                        : SynthMode::kConventional;
}

struct SynthConfig {
  std::uint32_t num_layers = 5;
  std::uint32_t layer_code_bytes = 6 * 1024;
  std::uint32_t layer_data_bytes = 256;
  /// Instruction-execution cycles per layer per message, excluding the
  /// per-byte data loop: 1652 total for a 552-byte message at 0.5
  /// cycles/byte implies a 1376-cycle fixed part.
  std::uint32_t layer_fixed_cycles = 1376;
  double data_loop_cycles_per_byte = 0.5;
  /// LDLP queue handling: "enqueuing and dequeuing messages costs on the
  /// order of 40 instructions" (section 3.2), charged per message per
  /// layer boundary crossed.
  std::uint32_t queue_cost_cycles = 40;

  SynthMode mode = SynthMode::kConventional;
  /// 0 = derive from the D-cache via core::estimate_blocking.
  std::uint32_t batch_limit = 0;
  /// LDLP layer grouping (section 6): consecutive layers processed
  /// back-to-back per message within a blocked pass. 1 = pure LDLP
  /// (default); num_layers = conventional order inside one batch;
  /// 0 = auto via core::plan_groups against the I-cache.
  std::uint32_t layers_per_group = 1;

  /// Request/response mode — the transmit-side extension the paper leaves
  /// unevaluated. Each message climbs the receive stack, is handled by an
  /// application (a signalling switch answering a SETUP), and a response
  /// descends a *distinct* transmit code path of the same per-layer size
  /// (tcp_input vs tcp_output: different functions). Doubles the code
  /// working set; under kLdlp both directions are blocked.
  bool duplex = false;
  std::uint32_t app_cycles_per_msg = 300;  ///< Application handling cost.
  std::uint32_t app_code_bytes = 2048;     ///< Application code footprint.
  std::uint32_t buffer_limit = 500;  ///< Receive buffer (packets); then drop.
  std::uint32_t max_message_bytes = 2048;
  /// Message size assumed by the blocking estimate (the paper's reference
  /// 552-byte internet packet). Signalling configs set ~100.
  std::uint32_t typical_message_bytes = 552;

  sim::CpuConfig cpu{};  ///< Defaults: 100 MHz, 8 KB/32 B/DM I+D, 20-cycle miss.
  std::uint64_t layout_seed = 1;
};

struct RunResult {
  std::uint64_t offered = 0;    ///< Arrivals seen (admitted + dropped).
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  double mean_latency_sec = 0.0;
  double p50_latency_sec = 0.0;
  double p99_latency_sec = 0.0;
  double max_latency_sec = 0.0;
  double i_misses_per_msg = 0.0;
  double d_misses_per_msg = 0.0;
  double mean_batch = 0.0;      ///< Achieved blocking factor.
  double busy_fraction = 0.0;   ///< CPU utilisation over the horizon.
  std::uint32_t batch_limit = 1;
};

class SynthStack {
 public:
  explicit SynthStack(const SynthConfig& config);

  /// Drive the stack with `source` until `horizon` seconds of simulated
  /// time, then let the server drain what it already accepted.
  [[nodiscard]] RunResult run(traffic::ArrivalSource& source,
                              eventsim::SimTime horizon);

  [[nodiscard]] std::uint32_t batch_limit() const noexcept {
    return batch_limit_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& groups() const noexcept {
    return groups_;
  }

  /// The simulated machine, for observability: per-layer miss attribution
  /// lives in cpu().memory().scope_misses() (scope == layer id; the
  /// application pass in duplex mode uses scope == num_layers).
  [[nodiscard]] const sim::CpuModel& cpu() const noexcept { return cpu_; }

 private:
  struct Pending {
    eventsim::SimTime arrival = 0.0;
    std::uint32_t size = 0;
    std::uint32_t slot = 0;
  };

  /// Charge one (layer, message) processing step to the machine.
  /// `direction` 0 = receive code path, 1 = transmit code path.
  void charge_layer_message(std::uint32_t layer, const Pending& msg,
                            bool touch_message_data, int direction = 0);
  void charge_app_message(const Pending& msg);

  /// Process a batch; returns cycles consumed.
  std::uint64_t process_batch(const std::vector<Pending>& batch);

  SynthConfig cfg_;
  sim::CpuModel cpu_;
  std::uint32_t batch_limit_ = 1;
  std::vector<std::uint32_t> groups_;  ///< Layer-group sizes, stack order.
  std::vector<sim::Region> layer_code_;     ///< Receive-side code.
  std::vector<sim::Region> layer_tx_code_;  ///< Transmit-side (duplex).
  sim::Region app_code_{};
  std::vector<sim::Region> layer_data_;
  std::vector<sim::Region> buffer_slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ldlp::synth
