#include "synth/sweep.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "traffic/size_models.hpp"

namespace ldlp::synth {

RunResult average(const std::vector<RunResult>& results) {
  RunResult mean;
  if (results.empty()) return mean;
  const auto n = static_cast<double>(results.size());
  for (const RunResult& r : results) {
    mean.offered += r.offered;
    mean.completed += r.completed;
    mean.dropped += r.dropped;
    mean.mean_latency_sec += r.mean_latency_sec / n;
    mean.p50_latency_sec += r.p50_latency_sec / n;
    mean.p99_latency_sec += r.p99_latency_sec / n;
    mean.max_latency_sec = std::max(mean.max_latency_sec, r.max_latency_sec);
    mean.i_misses_per_msg += r.i_misses_per_msg / n;
    mean.d_misses_per_msg += r.d_misses_per_msg / n;
    mean.mean_batch += r.mean_batch / n;
    mean.busy_fraction += r.busy_fraction / n;
  }
  mean.offered /= results.size();
  mean.completed /= results.size();
  mean.dropped /= results.size();
  mean.batch_limit = results.front().batch_limit;
  return mean;
}

std::vector<SweepPoint> sweep_poisson_rates(const SynthConfig& base,
                                            const std::vector<double>& rates,
                                            const SweepOptions& options) {
  LDLP_ASSERT(options.runs > 0 && options.run_seconds > 0.0);
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  Rng master(options.seed);
  for (const double rate : rates) {
    std::vector<RunResult> runs;
    runs.reserve(options.runs);
    for (std::uint32_t run = 0; run < options.runs; ++run) {
      SynthConfig cfg = base;
      cfg.layout_seed = master();
      SynthStack stack(cfg);
      traffic::PoissonSource source(rate, traffic::internet552_sizes(),
                                    master());
      runs.push_back(stack.run(source, options.run_seconds));
    }
    points.push_back(SweepPoint{rate, average(runs)});
  }
  return points;
}

std::vector<SweepPoint> sweep_cpu_clock(
    const SynthConfig& base, const std::vector<traffic::PacketArrival>& trace,
    const std::vector<double>& clocks_hz, const SweepOptions& options) {
  LDLP_ASSERT(options.runs > 0 && !trace.empty());
  std::vector<SweepPoint> points;
  points.reserve(clocks_hz.size());
  Rng master(options.seed);
  for (const double clock : clocks_hz) {
    std::vector<RunResult> runs;
    runs.reserve(options.runs);
    for (std::uint32_t run = 0; run < options.runs; ++run) {
      SynthConfig cfg = base;
      cfg.cpu.clock_hz = clock;
      cfg.layout_seed = master();
      SynthStack stack(cfg);
      traffic::TraceReplaySource source(trace);
      runs.push_back(stack.run(source, trace.back().time));
    }
    points.push_back(SweepPoint{clock, average(runs)});
  }
  return points;
}

}  // namespace ldlp::synth
