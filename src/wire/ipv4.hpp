// IPv4 header codec (RFC 791), including the fragmentation fields the
// reassembly path needs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace ldlp::wire {

inline constexpr std::size_t kIpMinHeaderLen = 20;

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;             ///< Header length in 32-bit words.
  std::uint8_t tos = 0;
  std::uint16_t total_len = 0;      ///< Header + payload bytes.
  std::uint16_t ident = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t frag_offset = 0;    ///< In 8-byte units.
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;       ///< As seen on the wire.
  std::uint32_t src = 0;
  std::uint32_t dst = 0;

  [[nodiscard]] std::uint32_t header_len() const noexcept {
    return static_cast<std::uint32_t>(ihl) * 4;
  }
  [[nodiscard]] std::uint32_t payload_len() const noexcept {
    return total_len >= header_len() ? total_len - header_len() : 0;
  }
  [[nodiscard]] bool is_fragment() const noexcept {
    return more_fragments || frag_offset != 0;
  }
};

/// Parse and validate (version, ihl, total_len coherence, header checksum).
[[nodiscard]] std::optional<Ipv4Header> parse_ipv4(
    std::span<const std::uint8_t> data) noexcept;

/// Serialize with a freshly computed header checksum. Returns bytes
/// written (header_len()) or 0 if `out` is too small.
std::size_t write_ipv4(const Ipv4Header& header,
                       std::span<std::uint8_t> out) noexcept;

/// Dotted-quad helpers for logs and examples.
[[nodiscard]] std::string ip_to_string(std::uint32_t ip);
[[nodiscard]] std::uint32_t ip_from_parts(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c,
                                          std::uint8_t d) noexcept;

}  // namespace ldlp::wire
