#include "wire/ethernet.hpp"

#include <cstdio>
#include <cstring>

#include "common/byteorder.hpp"

namespace ldlp::wire {

std::optional<EthHeader> parse_eth(
    std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < kEthHeaderLen) return std::nullopt;
  EthHeader h;
  std::memcpy(h.dst.data(), frame.data(), 6);
  std::memcpy(h.src.data(), frame.data() + 6, 6);
  h.ether_type = load_be16(frame.data() + 12);
  return h;
}

std::size_t write_eth(const EthHeader& header,
                      std::span<std::uint8_t> out) noexcept {
  if (out.size() < kEthHeaderLen) return 0;
  std::memcpy(out.data(), header.dst.data(), 6);
  std::memcpy(out.data() + 6, header.src.data(), 6);
  store_be16(out.data() + 12, header.ether_type);
  return kEthHeaderLen;
}

std::string mac_to_string(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

}  // namespace ldlp::wire
