// UDP header codec (RFC 768).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace ldlp::wire {

inline constexpr std::size_t kUdpHeaderLen = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    ///< Header + payload.
  std::uint16_t checksum = 0;  ///< 0 = not computed (legal for IPv4).
};

[[nodiscard]] std::optional<UdpHeader> parse_udp(
    std::span<const std::uint8_t> data) noexcept;

std::size_t write_udp(const UdpHeader& header,
                      std::span<std::uint8_t> out) noexcept;

}  // namespace ldlp::wire
