#include "wire/ipv4.hpp"

#include <cstdio>

#include "common/byteorder.hpp"
#include "wire/checksum.hpp"

namespace ldlp::wire {

std::optional<Ipv4Header> parse_ipv4(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kIpMinHeaderLen) return std::nullopt;
  Ipv4Header h;
  const std::uint8_t vihl = data[0];
  h.version = vihl >> 4;
  h.ihl = vihl & 0x0f;
  if (h.version != 4 || h.ihl < 5) return std::nullopt;
  if (data.size() < h.header_len()) return std::nullopt;
  h.tos = data[1];
  h.total_len = load_be16(data.data() + 2);
  if (h.total_len < h.header_len()) return std::nullopt;
  h.ident = load_be16(data.data() + 4);
  const std::uint16_t frag = load_be16(data.data() + 6);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.frag_offset = frag & 0x1fff;
  h.ttl = data[8];
  h.protocol = data[9];
  h.checksum = load_be16(data.data() + 10);
  h.src = load_be32(data.data() + 12);
  h.dst = load_be32(data.data() + 16);

  // Validate header checksum: summing the header including the stored
  // checksum must give 0xffff (i.e. ~sum == 0).
  if (cksum_simple({data.data(), h.header_len()}) != 0) return std::nullopt;
  return h;
}

std::size_t write_ipv4(const Ipv4Header& header,
                       std::span<std::uint8_t> out) noexcept {
  const std::uint32_t hlen = header.header_len();
  if (out.size() < hlen || header.ihl < 5) return 0;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>((header.version << 4) | header.ihl));
  w.u8(header.tos);
  w.be16(header.total_len);
  w.be16(header.ident);
  std::uint16_t frag = header.frag_offset & 0x1fff;
  if (header.dont_fragment) frag |= 0x4000;
  if (header.more_fragments) frag |= 0x2000;
  w.be16(frag);
  w.u8(header.ttl);
  w.u8(header.protocol);
  w.be16(0);  // checksum placeholder
  w.be32(header.src);
  w.be32(header.dst);
  // Zero any options area the caller asked for (ihl > 5).
  w.fill(0, hlen - kIpMinHeaderLen);
  if (!w.ok()) return 0;
  const std::uint16_t sum = cksum_simple({out.data(), hlen});
  store_be16(out.data() + 10, sum);
  return hlen;
}

std::string ip_to_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::uint32_t ip_from_parts(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                            std::uint8_t d) noexcept {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

}  // namespace ldlp::wire
