#include "wire/hexdump.hpp"

#include <cctype>
#include <cstdio>
#include <vector>

namespace ldlp::wire {

std::string hexdump(std::span<const std::uint8_t> data,
                    std::size_t bytes_per_line) {
  std::string out;
  char buf[24];
  for (std::size_t line = 0; line < data.size(); line += bytes_per_line) {
    std::snprintf(buf, sizeof buf, "%06zx  ", line);
    out += buf;
    const std::size_t end = std::min(line + bytes_per_line, data.size());
    for (std::size_t i = line; i < end; ++i) {
      std::snprintf(buf, sizeof buf, "%02x ", data[i]);
      out += buf;
    }
    for (std::size_t i = end; i < line + bytes_per_line; ++i) out += "   ";
    out += " |";
    for (std::size_t i = line; i < end; ++i) {
      out += std::isprint(data[i]) != 0 ? static_cast<char>(data[i]) : '.';
    }
    out += "|\n";
  }
  return out;
}

std::string hexdump(const buf::Packet& pkt, std::size_t max_bytes) {
  const std::size_t n =
      std::min<std::size_t>(max_bytes, pkt.length());
  std::vector<std::uint8_t> bytes(n);
  if (!pkt.copy_out(0, bytes)) return "<short packet>\n";
  return hexdump(bytes);
}

}  // namespace ldlp::wire
