#include "wire/arp.hpp"

#include <cstring>

#include "common/byteorder.hpp"

namespace ldlp::wire {

namespace {
constexpr std::uint16_t kHwEthernet = 1;
constexpr std::uint16_t kProtoIpv4 = 0x0800;
}  // namespace

std::optional<ArpPacket> parse_arp(
    std::span<const std::uint8_t> data) noexcept {
  ByteReader r(data);
  const std::uint16_t hw = r.be16();
  const std::uint16_t proto = r.be16();
  const std::uint8_t hlen = r.u8();
  const std::uint8_t plen = r.u8();
  const std::uint16_t op = r.be16();
  if (!r.ok() || hw != kHwEthernet || proto != kProtoIpv4 || hlen != 6 ||
      plen != 4)
    return std::nullopt;
  if (op != static_cast<std::uint16_t>(ArpOp::kRequest) &&
      op != static_cast<std::uint16_t>(ArpOp::kReply))
    return std::nullopt;

  ArpPacket pkt;
  pkt.op = static_cast<ArpOp>(op);
  auto smac = r.bytes(6);
  pkt.sender_ip = r.be32();
  auto tmac = r.bytes(6);
  pkt.target_ip = r.be32();
  if (!r.ok()) return std::nullopt;
  std::memcpy(pkt.sender_mac.data(), smac.data(), 6);
  std::memcpy(pkt.target_mac.data(), tmac.data(), 6);
  return pkt;
}

std::size_t write_arp(const ArpPacket& pkt,
                      std::span<std::uint8_t> out) noexcept {
  ByteWriter w(out);
  w.be16(kHwEthernet);
  w.be16(kProtoIpv4);
  w.u8(6);
  w.u8(4);
  w.be16(static_cast<std::uint16_t>(pkt.op));
  w.bytes({pkt.sender_mac.data(), 6});
  w.be32(pkt.sender_ip);
  w.bytes({pkt.target_mac.data(), 6});
  w.be32(pkt.target_ip);
  return w.ok() ? w.position() : 0;
}

}  // namespace ldlp::wire
