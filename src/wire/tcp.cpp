#include "wire/tcp.hpp"

#include "common/byteorder.hpp"

namespace ldlp::wire {

std::optional<TcpHeader> parse_tcp(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kTcpMinHeaderLen) return std::nullopt;
  TcpHeader h;
  h.src_port = load_be16(data.data());
  h.dst_port = load_be16(data.data() + 2);
  h.seq = load_be32(data.data() + 4);
  h.ack = load_be32(data.data() + 8);
  h.data_off = data[12] >> 4;
  h.flags = data[13];
  h.window = load_be16(data.data() + 14);
  h.checksum = load_be16(data.data() + 16);
  h.urgent = load_be16(data.data() + 18);
  if (h.data_off < 5 || data.size() < h.header_len()) return std::nullopt;

  // Scan options for MSS (kind 2); stop at end-of-options (0).
  std::size_t pos = kTcpMinHeaderLen;
  const std::size_t end = h.header_len();
  while (pos < end) {
    const std::uint8_t kind = data[pos];
    if (kind == 0) break;
    if (kind == 1) {  // NOP
      ++pos;
      continue;
    }
    if (pos + 1 >= end) return std::nullopt;
    const std::uint8_t optlen = data[pos + 1];
    if (optlen < 2 || pos + optlen > end) return std::nullopt;
    if (kind == 2 && optlen == 4) h.mss = load_be16(data.data() + pos + 2);
    pos += optlen;
  }
  return h;
}

std::size_t write_tcp(const TcpHeader& header,
                      std::span<std::uint8_t> out) noexcept {
  const std::size_t hlen =
      kTcpMinHeaderLen + (header.mss.has_value() ? 4u : 0u);
  if (out.size() < hlen) return 0;
  ByteWriter w(out);
  w.be16(header.src_port);
  w.be16(header.dst_port);
  w.be32(header.seq);
  w.be32(header.ack);
  const auto data_off = static_cast<std::uint8_t>(hlen / 4);
  w.u8(static_cast<std::uint8_t>(data_off << 4));
  w.u8(header.flags);
  w.be16(header.window);
  w.be16(header.checksum);
  w.be16(header.urgent);
  if (header.mss.has_value()) {
    w.u8(2);  // kind: MSS
    w.u8(4);  // length
    w.be16(*header.mss);
  }
  return w.ok() ? hlen : 0;
}

}  // namespace ldlp::wire
