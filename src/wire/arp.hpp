// ARP for IPv4 over Ethernet (RFC 826, the subset a host needs).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "wire/ethernet.hpp"

namespace ldlp::wire {

inline constexpr std::size_t kArpLen = 28;

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddr sender_mac{};
  std::uint32_t sender_ip = 0;
  MacAddr target_mac{};
  std::uint32_t target_ip = 0;
};

[[nodiscard]] std::optional<ArpPacket> parse_arp(
    std::span<const std::uint8_t> data) noexcept;

std::size_t write_arp(const ArpPacket& pkt,
                      std::span<std::uint8_t> out) noexcept;

}  // namespace ldlp::wire
