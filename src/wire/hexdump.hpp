// Debug hex dump of packet bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "buf/packet.hpp"

namespace ldlp::wire {

[[nodiscard]] std::string hexdump(std::span<const std::uint8_t> data,
                                  std::size_t bytes_per_line = 16);

/// Dump the first `max_bytes` of a packet chain.
[[nodiscard]] std::string hexdump(const buf::Packet& pkt,
                                  std::size_t max_bytes = 128);

}  // namespace ldlp::wire
