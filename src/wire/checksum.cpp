#include "wire/checksum.hpp"

#include "common/assert.hpp"

namespace ldlp::wire {

namespace {

/// Fold a 64-bit one's-complement accumulator to 16 bits.
[[nodiscard]] std::uint16_t fold(std::uint64_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// Simple loop: big-endian 16-bit words, one at a time.
[[nodiscard]] std::uint64_t sum_simple(const std::uint8_t* p,
                                       std::size_t len) noexcept {
  std::uint64_t sum = 0;
  while (len >= 2) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    p += 2;
    len -= 2;
  }
  if (len != 0) sum += static_cast<std::uint64_t>(p[0]) << 8;
  return sum;
}

/// Elaborate loop: alignment prologue, then 16 words (32 bytes — one cache
/// line on the paper's machine) per iteration.
[[nodiscard]] std::uint64_t sum_unrolled(const std::uint8_t* p,
                                         std::size_t len) noexcept {
  std::uint64_t sum = 0;
  // Prologue: odd leading byte.
  if (len != 0 && (reinterpret_cast<std::uintptr_t>(p) & 1) != 0) {
    // A misaligned start swaps byte significance for the rest of the
    // buffer; handle by summing the first byte as low-order and marking
    // the swap. For simplicity (and identical results) we fall back to
    // word-at-a-time summing without alignment tricks — the unrolling is
    // what matters for the code-size experiment.
  }
  while (len >= 32) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    sum += static_cast<std::uint64_t>(p[2]) << 8 | p[3];
    sum += static_cast<std::uint64_t>(p[4]) << 8 | p[5];
    sum += static_cast<std::uint64_t>(p[6]) << 8 | p[7];
    sum += static_cast<std::uint64_t>(p[8]) << 8 | p[9];
    sum += static_cast<std::uint64_t>(p[10]) << 8 | p[11];
    sum += static_cast<std::uint64_t>(p[12]) << 8 | p[13];
    sum += static_cast<std::uint64_t>(p[14]) << 8 | p[15];
    sum += static_cast<std::uint64_t>(p[16]) << 8 | p[17];
    sum += static_cast<std::uint64_t>(p[18]) << 8 | p[19];
    sum += static_cast<std::uint64_t>(p[20]) << 8 | p[21];
    sum += static_cast<std::uint64_t>(p[22]) << 8 | p[23];
    sum += static_cast<std::uint64_t>(p[24]) << 8 | p[25];
    sum += static_cast<std::uint64_t>(p[26]) << 8 | p[27];
    sum += static_cast<std::uint64_t>(p[28]) << 8 | p[29];
    sum += static_cast<std::uint64_t>(p[30]) << 8 | p[31];
    p += 32;
    len -= 32;
  }
  while (len >= 8) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    sum += static_cast<std::uint64_t>(p[2]) << 8 | p[3];
    sum += static_cast<std::uint64_t>(p[4]) << 8 | p[5];
    sum += static_cast<std::uint64_t>(p[6]) << 8 | p[7];
    p += 8;
    len -= 8;
  }
  while (len >= 2) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    p += 2;
    len -= 2;
  }
  if (len != 0) sum += static_cast<std::uint64_t>(p[0]) << 8;
  return sum;
}

}  // namespace

void CksumAccumulator::add(std::span<const std::uint8_t> data,
                           bool simple) noexcept {
  if (data.empty()) return;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  if (offset_odd) {
    // Previous segment ended mid-word: this byte is the low-order half.
    sum += p[0];
    ++p;
    --len;
    offset_odd = false;
  }
  sum += simple ? sum_simple(p, len) : sum_unrolled(p, len);
  if (len % 2 != 0) {
    // sum_* already added the trailing byte as high-order; remember the
    // parity so the next segment's first byte lands low-order.
    offset_odd = true;
  }
}

std::uint16_t CksumAccumulator::finish() const noexcept {
  return static_cast<std::uint16_t>(~fold(sum));
}

std::uint16_t cksum_simple(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(~fold(sum_simple(data.data(), data.size())));
}

std::uint16_t cksum_unrolled(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(
      ~fold(sum_unrolled(data.data(), data.size())));
}

std::uint16_t cksum_packet(const buf::Packet& pkt, std::uint32_t off,
                           std::uint32_t len, bool simple) noexcept {
  CksumAccumulator acc;
  const buf::Mbuf* m = pkt.head();
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  std::uint32_t remaining = len;
  while (m != nullptr && remaining > 0) {
    const std::uint32_t take = std::min(remaining, m->len() - off);
    acc.add({m->data() + off, take}, simple);
    remaining -= take;
    off = 0;
    m = m->next();
  }
  LDLP_DASSERT(remaining == 0);
  return acc.finish();
}

std::uint64_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::uint8_t protocol,
                                std::uint16_t length) noexcept {
  std::uint64_t sum = 0;
  sum += (src_ip >> 16) + (src_ip & 0xffff);
  sum += (dst_ip >> 16) + (dst_ip & 0xffff);
  sum += protocol;
  sum += length;
  return sum;
}

std::uint16_t transport_cksum(const buf::Packet& pkt, std::uint32_t off,
                              std::uint32_t len, std::uint32_t src_ip,
                              std::uint32_t dst_ip,
                              std::uint8_t protocol) noexcept {
  CksumAccumulator acc;
  acc.sum = pseudo_header_sum(src_ip, dst_ip, protocol,
                              static_cast<std::uint16_t>(len));
  const buf::Mbuf* m = pkt.head();
  std::uint32_t skip = off;
  while (m != nullptr && skip >= m->len()) {
    skip -= m->len();
    m = m->next();
  }
  std::uint32_t remaining = len;
  while (m != nullptr && remaining > 0) {
    const std::uint32_t take = std::min(remaining, m->len() - skip);
    acc.add({m->data() + skip, take}, /*simple=*/false);
    remaining -= take;
    skip = 0;
    m = m->next();
  }
  return acc.finish();
}

}  // namespace ldlp::wire
