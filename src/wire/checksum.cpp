#include "wire/checksum.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

// Feature macro: LDLP_CKSUM_NO_SIMD forces the scalar-wide fallback even
// where the ISA has vector bytes-sum support (used to benchmark the
// fallback and to rule the SIMD path out when chasing a miscompare).
#if !defined(LDLP_CKSUM_NO_SIMD) && defined(__SSE2__)
#define LDLP_CKSUM_SIMD 1
#include <emmintrin.h>
#elif !defined(LDLP_CKSUM_NO_SIMD) && defined(__ARM_NEON)
#define LDLP_CKSUM_SIMD 2
#include <arm_neon.h>
#else
#define LDLP_CKSUM_SIMD 0
#endif

namespace ldlp::wire {

namespace {

/// Fold a 64-bit one's-complement accumulator to 16 bits.
[[nodiscard]] std::uint16_t fold(std::uint64_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// Simple loop: big-endian 16-bit words, one at a time.
[[nodiscard]] std::uint64_t sum_simple(const std::uint8_t* p,
                                       std::size_t len) noexcept {
  std::uint64_t sum = 0;
  while (len >= 2) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    p += 2;
    len -= 2;
  }
  if (len != 0) sum += static_cast<std::uint64_t>(p[0]) << 8;
  return sum;
}

/// Elaborate loop: alignment prologue, then 16 words (32 bytes — one cache
/// line on the paper's machine) per iteration.
[[nodiscard]] std::uint64_t sum_unrolled(const std::uint8_t* p,
                                         std::size_t len) noexcept {
  std::uint64_t sum = 0;
  // Prologue: odd leading byte.
  if (len != 0 && (reinterpret_cast<std::uintptr_t>(p) & 1) != 0) {
    // A misaligned start swaps byte significance for the rest of the
    // buffer; handle by summing the first byte as low-order and marking
    // the swap. For simplicity (and identical results) we fall back to
    // word-at-a-time summing without alignment tricks — the unrolling is
    // what matters for the code-size experiment.
  }
  while (len >= 32) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    sum += static_cast<std::uint64_t>(p[2]) << 8 | p[3];
    sum += static_cast<std::uint64_t>(p[4]) << 8 | p[5];
    sum += static_cast<std::uint64_t>(p[6]) << 8 | p[7];
    sum += static_cast<std::uint64_t>(p[8]) << 8 | p[9];
    sum += static_cast<std::uint64_t>(p[10]) << 8 | p[11];
    sum += static_cast<std::uint64_t>(p[12]) << 8 | p[13];
    sum += static_cast<std::uint64_t>(p[14]) << 8 | p[15];
    sum += static_cast<std::uint64_t>(p[16]) << 8 | p[17];
    sum += static_cast<std::uint64_t>(p[18]) << 8 | p[19];
    sum += static_cast<std::uint64_t>(p[20]) << 8 | p[21];
    sum += static_cast<std::uint64_t>(p[22]) << 8 | p[23];
    sum += static_cast<std::uint64_t>(p[24]) << 8 | p[25];
    sum += static_cast<std::uint64_t>(p[26]) << 8 | p[27];
    sum += static_cast<std::uint64_t>(p[28]) << 8 | p[29];
    sum += static_cast<std::uint64_t>(p[30]) << 8 | p[31];
    p += 32;
    len -= 32;
  }
  while (len >= 8) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    sum += static_cast<std::uint64_t>(p[2]) << 8 | p[3];
    sum += static_cast<std::uint64_t>(p[4]) << 8 | p[5];
    sum += static_cast<std::uint64_t>(p[6]) << 8 | p[7];
    p += 8;
    len -= 8;
  }
  while (len >= 2) {
    sum += static_cast<std::uint64_t>(p[0]) << 8 | p[1];
    p += 2;
    len -= 2;
  }
  if (len != 0) sum += static_cast<std::uint64_t>(p[0]) << 8;
  return sum;
}

/// Wide loop. The sum of big-endian 16-bit words over [p, p+len) equals
///   256 * (sum of bytes at even offsets) + (sum of bytes at odd offsets)
/// including a trailing odd byte, which sits at an even offset and is
/// specified to count as the high-order half. Byte sums have no
/// carry/order structure, so they vectorise freely; the weighting is
/// applied once at the end.
[[nodiscard]] std::uint64_t sum_wide(const std::uint8_t* p,
                                     std::size_t len) noexcept {
  std::uint64_t even = 0;  // bytes at offsets 0, 2, 4, ...
  std::uint64_t odd = 0;   // bytes at offsets 1, 3, 5, ...
  std::size_t n = len;
#if LDLP_CKSUM_SIMD == 1
  // SSE2: split each 16-byte chunk into its even/odd byte lanes (mask and
  // shift within 16-bit lanes — loads are little-endian, so lane low bytes
  // are the even offsets), then _mm_sad_epu8 horizontally sums 8 bytes at
  // a time into the 64-bit accumulators. Two chunks per iteration.
  const __m128i lo_mask = _mm_set1_epi16(0x00ff);
  const __m128i zero = _mm_setzero_si128();
  __m128i acc_even = zero;
  __m128i acc_odd = zero;
  while (n >= 32) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    acc_even = _mm_add_epi64(acc_even,
                             _mm_sad_epu8(_mm_and_si128(a, lo_mask), zero));
    acc_even = _mm_add_epi64(acc_even,
                             _mm_sad_epu8(_mm_and_si128(b, lo_mask), zero));
    acc_odd =
        _mm_add_epi64(acc_odd, _mm_sad_epu8(_mm_srli_epi16(a, 8), zero));
    acc_odd =
        _mm_add_epi64(acc_odd, _mm_sad_epu8(_mm_srli_epi16(b, 8), zero));
    p += 32;
    n -= 32;
  }
  if (n >= 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    acc_even = _mm_add_epi64(acc_even,
                             _mm_sad_epu8(_mm_and_si128(a, lo_mask), zero));
    acc_odd =
        _mm_add_epi64(acc_odd, _mm_sad_epu8(_mm_srli_epi16(a, 8), zero));
    p += 16;
    n -= 16;
  }
  even += static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc_even)) +
          static_cast<std::uint64_t>(
              _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc_even, acc_even)));
  odd += static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc_odd)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc_odd, acc_odd)));
#elif LDLP_CKSUM_SIMD == 2
  // NEON: same even/odd split; vpadalq widens-and-accumulates byte sums.
  uint64x2_t acc_even = vdupq_n_u64(0);
  uint64x2_t acc_odd = vdupq_n_u64(0);
  while (n >= 16) {
    const uint8x16_t a = vld1q_u8(p);
    const uint16x8_t lanes = vreinterpretq_u16_u8(a);
    const uint16x8_t ev = vandq_u16(lanes, vdupq_n_u16(0x00ff));
    const uint16x8_t od = vshrq_n_u16(lanes, 8);
    acc_even = vpadalq_u32(acc_even, vpaddlq_u16(ev));
    acc_odd = vpadalq_u32(acc_odd, vpaddlq_u16(od));
    p += 16;
    n -= 16;
  }
  even += vgetq_lane_u64(acc_even, 0) + vgetq_lane_u64(acc_even, 1);
  odd += vgetq_lane_u64(acc_odd, 0) + vgetq_lane_u64(acc_odd, 1);
#else
  // Scalar-wide fallback: 16 bytes (two 64-bit loads) per stride. Masking
  // with 0x00ff.. leaves four byte values in 16-bit lanes; multiplying by
  // 0x0001000100010001 and taking the top lane horizontally adds them
  // (lane sums peak at 4*255, far below the 16-bit lane width). The mask
  // picks even buffer offsets only on a little-endian load.
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t kLoBytes = 0x00ff00ff00ff00ffULL;
    constexpr std::uint64_t kHadd = 0x0001000100010001ULL;
    while (n >= 16) {
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      even += ((a & kLoBytes) * kHadd) >> 48;
      even += ((b & kLoBytes) * kHadd) >> 48;
      odd += (((a >> 8) & kLoBytes) * kHadd) >> 48;
      odd += (((b >> 8) & kLoBytes) * kHadd) >> 48;
      p += 16;
      n -= 16;
    }
  }
#endif
  while (n >= 2) {
    even += p[0];
    odd += p[1];
    p += 2;
    n -= 2;
  }
  if (n != 0) even += p[0];
  return (even << 8) + odd;
}

}  // namespace

void CksumAccumulator::add(std::span<const std::uint8_t> data,
                           bool simple) noexcept {
  if (data.empty()) return;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  if (offset_odd) {
    // Previous segment ended mid-word: this byte is the low-order half.
    sum += p[0];
    ++p;
    --len;
    offset_odd = false;
  }
  sum += simple ? sum_simple(p, len) : sum_wide(p, len);
  if (len % 2 != 0) {
    // sum_* already added the trailing byte as high-order; remember the
    // parity so the next segment's first byte lands low-order.
    offset_odd = true;
  }
}

std::uint16_t CksumAccumulator::finish() const noexcept {
  return static_cast<std::uint16_t>(~fold(sum));
}

std::uint16_t cksum_simple(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(~fold(sum_simple(data.data(), data.size())));
}

std::uint16_t cksum_unrolled(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(
      ~fold(sum_unrolled(data.data(), data.size())));
}

std::uint16_t cksum_wide(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(~fold(sum_wide(data.data(), data.size())));
}

bool cksum_simd_enabled() noexcept { return LDLP_CKSUM_SIMD != 0; }

std::uint16_t cksum_packet(const buf::Packet& pkt, std::uint32_t off,
                           std::uint32_t len, bool simple) noexcept {
  CksumAccumulator acc;
  const buf::Mbuf* m = pkt.head();
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  std::uint32_t remaining = len;
  while (m != nullptr && remaining > 0) {
    const std::uint32_t take = std::min(remaining, m->len() - off);
    acc.add({m->data() + off, take}, simple);
    remaining -= take;
    off = 0;
    m = m->next();
  }
  LDLP_DASSERT(remaining == 0);
  return acc.finish();
}

std::uint64_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::uint8_t protocol,
                                std::uint16_t length) noexcept {
  std::uint64_t sum = 0;
  sum += (src_ip >> 16) + (src_ip & 0xffff);
  sum += (dst_ip >> 16) + (dst_ip & 0xffff);
  sum += protocol;
  sum += length;
  return sum;
}

std::uint16_t transport_cksum(const buf::Packet& pkt, std::uint32_t off,
                              std::uint32_t len, std::uint32_t src_ip,
                              std::uint32_t dst_ip,
                              std::uint8_t protocol) noexcept {
  CksumAccumulator acc;
  acc.sum = pseudo_header_sum(src_ip, dst_ip, protocol,
                              static_cast<std::uint16_t>(len));
  const buf::Mbuf* m = pkt.head();
  std::uint32_t skip = off;
  while (m != nullptr && skip >= m->len()) {
    skip -= m->len();
    m = m->next();
  }
  std::uint32_t remaining = len;
  while (m != nullptr && remaining > 0) {
    const std::uint32_t take = std::min(remaining, m->len() - skip);
    acc.add({m->data() + skip, take}, /*simple=*/false);
    remaining -= take;
    skip = 0;
    m = m->next();
  }
  return acc.finish();
}

}  // namespace ldlp::wire
