// Internet checksum (RFC 1071), in the two styles Figure 8 compares.
//
// cksum_simple: the smallest reasonable implementation — one 16-bit-at-a-
// time loop. Few hundred bytes of machine code; more cycles per byte.
//
// cksum_unrolled: a 4.4BSD-style elaborate routine — wide accumulation
// with a 16-way unrolled inner loop and alignment prologue. Much larger
// code footprint; fewer cycles per byte once the instruction cache is
// warm. The paper's point is that with a *cold* cache the simple routine
// wins for messages up to ~900 bytes because it fetches far fewer
// instruction lines.
//
// cksum_wide: the modern fast path — the one's-complement sum of
// big-endian words equals 256·Σ(even-offset bytes) + Σ(odd-offset bytes),
// so the inner loop reduces to two byte sums that vectorise: SSE2/NEON
// under LDLP_CKSUM_SIMD (on by default where the ISA guarantees it), with
// a 16-byte-stride scalar-wide fallback that needs only 64-bit loads and
// a multiply-horizontal-add. Bitwise-identical results to the other two;
// this is what the stack's own in_cksum path (CksumAccumulator) runs.
//
// Both fold to the standard one's-complement 16-bit result and are
// byte-order independent in the usual way (the caller treats the result as
// already in network order when it was computed over network-order data).
#pragma once

#include <cstdint>
#include <span>

#include "buf/packet.hpp"

namespace ldlp::wire {

/// Incremental state so checksums can run across mbuf chains. `offset_odd`
/// tracks byte parity between noncontiguous segments.
struct CksumAccumulator {
  std::uint64_t sum = 0;
  bool offset_odd = false;

  void add(std::span<const std::uint8_t> data, bool simple) noexcept;
  [[nodiscard]] std::uint16_t finish() const noexcept;
};

/// One-shot over contiguous bytes.
[[nodiscard]] std::uint16_t cksum_simple(
    std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] std::uint16_t cksum_unrolled(
    std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] std::uint16_t cksum_wide(
    std::span<const std::uint8_t> data) noexcept;

/// True when the wide routine compiled down to the SIMD (SSE2/NEON) inner
/// loop rather than the scalar-wide fallback — benches record this so a
/// baseline from one ISA is not compared against another.
[[nodiscard]] bool cksum_simd_enabled() noexcept;

/// Checksum `len` bytes of a packet starting at `off`, walking the mbuf
/// chain without copying (the in_cksum of this stack). `simple` selects
/// the inner loop.
[[nodiscard]] std::uint16_t cksum_packet(const buf::Packet& pkt,
                                         std::uint32_t off, std::uint32_t len,
                                         bool simple = false) noexcept;

/// IPv4 pseudo-header partial sum for TCP/UDP (RFC 793 section 3.1).
[[nodiscard]] std::uint64_t pseudo_header_sum(std::uint32_t src_ip,
                                              std::uint32_t dst_ip,
                                              std::uint8_t protocol,
                                              std::uint16_t length) noexcept;

/// Transport checksum: pseudo-header plus packet bytes [off, off+len).
[[nodiscard]] std::uint16_t transport_cksum(const buf::Packet& pkt,
                                            std::uint32_t off,
                                            std::uint32_t len,
                                            std::uint32_t src_ip,
                                            std::uint32_t dst_ip,
                                            std::uint8_t protocol) noexcept;

}  // namespace ldlp::wire
