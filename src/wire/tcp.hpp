// TCP header codec (RFC 793; options parsed for MSS only, which is all the
// mini-stack negotiates — timestamps are deliberately off, as in the
// paper's measured configuration).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace ldlp::wire {

inline constexpr std::size_t kTcpMinHeaderLen = 20;

namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_off = 5;  ///< Header length in 32-bit words.
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
  std::optional<std::uint16_t> mss;  ///< From options, if present.

  [[nodiscard]] std::uint32_t header_len() const noexcept {
    return static_cast<std::uint32_t>(data_off) * 4;
  }
  [[nodiscard]] bool has(std::uint8_t flag) const noexcept {
    return (flags & flag) != 0;
  }
};

[[nodiscard]] std::optional<TcpHeader> parse_tcp(
    std::span<const std::uint8_t> data) noexcept;

/// Serialize; emits an MSS option (and pads to a 4-byte boundary) when
/// header.mss is set, adjusting data_off accordingly. Checksum field is
/// written as given — compute it over the pseudo-header afterwards.
std::size_t write_tcp(const TcpHeader& header,
                      std::span<std::uint8_t> out) noexcept;

}  // namespace ldlp::wire
