// Ethernet II framing.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace ldlp::wire {

using MacAddr = std::array<std::uint8_t, 6>;

inline constexpr MacAddr kBroadcastMac{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kEthMinFrame = 60;    ///< Without FCS.
inline constexpr std::size_t kEthMaxPayload = 1500;

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ether_type = 0;

  [[nodiscard]] bool is_broadcast() const noexcept {
    return dst == kBroadcastMac;
  }
};

/// Parse from the front of `frame`; nullopt when the frame is too short.
[[nodiscard]] std::optional<EthHeader> parse_eth(
    std::span<const std::uint8_t> frame) noexcept;

/// Serialize into `out` (must be >= kEthHeaderLen). Returns bytes written.
std::size_t write_eth(const EthHeader& header,
                      std::span<std::uint8_t> out) noexcept;

[[nodiscard]] std::string mac_to_string(const MacAddr& mac);

}  // namespace ldlp::wire
