#include "wire/udp.hpp"

#include "common/byteorder.hpp"

namespace ldlp::wire {

std::optional<UdpHeader> parse_udp(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kUdpHeaderLen) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(data.data());
  h.dst_port = load_be16(data.data() + 2);
  h.length = load_be16(data.data() + 4);
  h.checksum = load_be16(data.data() + 6);
  if (h.length < kUdpHeaderLen) return std::nullopt;
  return h;
}

std::size_t write_udp(const UdpHeader& header,
                      std::span<std::uint8_t> out) noexcept {
  if (out.size() < kUdpHeaderLen) return 0;
  store_be16(out.data(), header.src_port);
  store_be16(out.data() + 2, header.dst_port);
  store_be16(out.data() + 4, header.length);
  store_be16(out.data() + 6, header.checksum);
  return kUdpHeaderLen;
}

}  // namespace ldlp::wire
